// Microbenchmarks (google-benchmark) for the wire codecs: row vs
// columnar encode/decode of poll-sized message batches, and the pooled
// frame read path's buffer acquisition.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_micro_main.h"
#include "msg/batch.h"
#include "msg/buffer_pool.h"
#include "msg/message.h"
#include "msg/remote/wire.h"

using namespace railgun;
using namespace railgun::msg;

namespace {

std::vector<Message> SampleMessages(int64_t count) {
  std::vector<Message> messages;
  messages.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    Message m;
    m.topic = "payments.cardId";
    m.partition = 0;
    m.offset = static_cast<uint64_t>(i);
    m.key = "card" + std::to_string(i % 64);
    m.payload = std::string(120 + (i % 5) * 16, 'e');
    m.publish_time = 1700000000000000 + i * 250;
    m.visible_time = m.publish_time + 500;
    messages.push_back(std::move(m));
  }
  return messages;
}

void BM_EncodeRow(benchmark::State& state) {
  const std::vector<Message> messages = SampleMessages(state.range(0));
  std::string encoded;
  for (auto _ : state) {
    encoded.clear();
    remote::PutWireMessageList(&encoded, messages);
    benchmark::DoNotOptimize(encoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeRow)->Arg(16)->Arg(256);

void BM_EncodeColumnar(benchmark::State& state) {
  const std::vector<Message> messages = SampleMessages(state.range(0));
  std::string encoded;
  for (auto _ : state) {
    encoded.clear();
    remote::PutColumnarMessageList(&encoded, messages);
    benchmark::DoNotOptimize(encoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodeColumnar)->Arg(16)->Arg(256);

void BM_DecodeRowCopy(benchmark::State& state) {
  std::string encoded;
  remote::PutWireMessageList(&encoded, SampleMessages(state.range(0)));
  for (auto _ : state) {
    Slice in(encoded);
    std::vector<Message> decoded;
    benchmark::DoNotOptimize(remote::GetWireMessageList(&in, &decoded));
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeRowCopy)->Arg(16)->Arg(256);

void BM_DecodeRowViews(benchmark::State& state) {
  std::string encoded;
  remote::PutWireMessageList(&encoded, SampleMessages(state.range(0)));
  MessageBatch batch;
  for (auto _ : state) {
    Slice in(encoded);
    batch.Clear();
    benchmark::DoNotOptimize(remote::GetWireMessageListViews(&in, &batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeRowViews)->Arg(16)->Arg(256);

void BM_DecodeColumnar(benchmark::State& state) {
  std::string encoded;
  remote::PutColumnarMessageList(&encoded, SampleMessages(state.range(0)));
  MessageBatch batch;
  for (auto _ : state) {
    Slice in(encoded);
    batch.Clear();
    benchmark::DoNotOptimize(remote::GetColumnarMessageList(&in, &batch));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DecodeColumnar)->Arg(16)->Arg(256);

void BM_PooledAcquireCycle(benchmark::State& state) {
  BufferPool pool(4);
  const size_t bytes = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    BufferRef buffer = pool.Acquire(bytes);
    benchmark::DoNotOptimize(buffer->data());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["misses"] =
      static_cast<double>(pool.misses());
}
BENCHMARK(BM_PooledAcquireCycle)->Arg(4096)->Arg(1 << 16);

}  // namespace

RAILGUN_BENCH_MICRO_MAIN("bench_micro_wire")
