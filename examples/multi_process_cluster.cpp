// Multi-process cluster: the paper's N-machine deployment for real.
// One broker process (message bus + membership/metadata/DDL services),
// N railgun_noded worker processes carrying the processor units, and
// remote api::Client processes submitting events.
//
// Run as separate processes (see scripts/multi_process_smoke.sh for the
// full choreography used by CI):
//   ./multi_process_cluster broker 7411            # Terminal 1
//   ./railgun_noded 127.0.0.1:7411 --node-id w1    # Terminal 2
//   ./railgun_noded 127.0.0.1:7411 --node-id w2    # Terminal 3
//   ./multi_process_cluster client 127.0.0.1:7411 --phase first
//   kill -TERM <pid of w2>                         # graceful leave
//   ./multi_process_cluster client 127.0.0.1:7411 --phase second
//
// or self-contained (broker + two workers in-process, still over real
// loopback TCP, including the node-leave rebalance):
//   ./multi_process_cluster
//
// The client phases prove the two membership guarantees end to end:
//   first  — client A declares the stream and metric; client B, a
//            fresh process that never saw the DDL, submits to it (the
//            schema comes from the metadata service) and the counts
//            include both clients' events;
//   second — run after a worker left: earlier acked events still count
//            (the survivor replayed the partition logs), and new
//            submissions keep flowing.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/client.h"
#include "meta/broker.h"
#include "meta/worker_node.h"
#include "trace/tracer.h"

using namespace railgun;
using api::Client;
using api::ClientOptions;
using api::EventResult;
using api::Row;

namespace {

constexpr const char* kStreamDdl =
    "CREATE STREAM payments (cardId STRING, merchantId STRING, "
    "amount DOUBLE) PARTITION BY cardId, merchantId PARTITIONS 4";
constexpr const char* kMetricDdl =
    "ADD METRIC SELECT sum(amount), count(*) FROM payments "
    "GROUP BY cardId OVER sliding 30 minutes";

// Submits one payment for card1 at minute `minute` and returns the
// exact sliding count(*) observed for card1, or -1 on failure.
double SubmitAndCount(Client& client, double minute) {
  const EventResult result = client.SubmitSync(
      "payments", Row()
                      .At(static_cast<Micros>(minute * kMicrosPerMinute))
                      .Set("cardId", "card1")
                      .Set("merchantId", "storeA")
                      .Set("amount", 1.0));
  if (!result.ok()) {
    fprintf(stderr, "submit failed: %s\n", result.status.ToString().c_str());
    return -1;
  }
  const api::MetricValue* count = result.Find("count(*)", "card1");
  if (count == nullptr) {
    fprintf(stderr, "no count(*) reply for card1\n");
    return -1;
  }
  return count->value.ToNumber();
}

int CheckCount(double got, double want, const char* what) {
  if (got == want) {
    printf("  %-34s count(*) card1 = %g\n", what, got);
    return 0;
  }
  fprintf(stderr, "FAIL: %s: count(*) card1 = %g, want %g\n", what, got,
          want);
  return 1;
}

// Phase "first": client A declares, submits 3 events; client B (no
// DDL) submits 3 more and must see A's events in its counts.
int RunPhaseFirst(const std::string& address) {
  ClientOptions options;
  options.remote_address = address;
  Client a(options);
  if (!a.Start().ok()) {
    fprintf(stderr, "client A failed to attach to %s\n", address.c_str());
    return 1;
  }
  for (const char* ddl : {kStreamDdl, kMetricDdl}) {
    const Status s = a.Execute(ddl);
    if (!s.ok() && !s.IsAlreadyExists()) {
      fprintf(stderr, "DDL failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  int failures = 0;
  failures += CheckCount(SubmitAndCount(a, 1), 1, "client A event 1");
  failures += CheckCount(SubmitAndCount(a, 2), 2, "client A event 2");
  failures += CheckCount(SubmitAndCount(a, 3), 3, "client A event 3");
  a.Stop();

  // A fresh client that never executed the DDL: the schema must come
  // from the metadata service for submission to even bind.
  Client b(options);
  if (!b.Start().ok()) {
    fprintf(stderr, "client B failed to attach\n");
    return 1;
  }
  failures += CheckCount(SubmitAndCount(b, 4), 4,
                         "client B (foreign stream) event 4");
  failures += CheckCount(SubmitAndCount(b, 5), 5,
                         "client B (foreign stream) event 5");
  failures += CheckCount(SubmitAndCount(b, 6), 6,
                         "client B (foreign stream) event 6");
  b.Stop();
  return failures;
}

// Phase "second" (run after a worker left): a fresh client's events
// must still count on top of the 6 acked in phase one.
int RunPhaseSecond(const std::string& address) {
  ClientOptions options;
  options.remote_address = address;
  Client c(options);
  if (!c.Start().ok()) {
    fprintf(stderr, "client C failed to attach\n");
    return 1;
  }
  int failures = 0;
  failures += CheckCount(SubmitAndCount(c, 7), 7,
                         "client C (after node leave) event 7");
  failures += CheckCount(SubmitAndCount(c, 8), 8,
                         "client C (after node leave) event 8");
  c.Stop();
  return failures;
}

int RunBroker(int port) {
  meta::BrokerOptions options;
  options.port = port;
  options.cluster.base_dir = "/tmp/railgun-mpc-broker";
  meta::Broker broker(options);
  if (!broker.Start().ok()) {
    fprintf(stderr, "failed to start broker on port %d\n", port);
    return 1;
  }
  printf("railgun broker serving on %s (0 local nodes; waiting for "
         "railgun_noded workers; ctrl-c to stop)\n",
         broker.address().c_str());
  fflush(stdout);
  for (;;) MonotonicClock::Default()->SleepMicros(kMicrosPerSecond);
}

meta::WorkerNodeOptions WorkerOptions(const std::string& address,
                                      const std::string& id) {
  meta::WorkerNodeOptions options;
  options.broker_address = address;
  options.node_id = id;
  options.num_units = 2;
  options.base_dir = "/tmp/railgun-mpc-" + id;
  options.heartbeat_period = 100 * kMicrosPerMilli;
  return options;
}

// Self-contained rendition of the whole choreography: one process, but
// every hop still crosses a real loopback socket.
int RunSelfContained() {
  meta::BrokerOptions broker_options;
  broker_options.cluster.base_dir = "/tmp/railgun-mpc-broker";
  meta::Broker broker(broker_options);
  if (!broker.Start().ok()) {
    fprintf(stderr, "failed to start broker\n");
    return 1;
  }
  printf("broker on %s\n", broker.address().c_str());

  meta::WorkerNode w1(WorkerOptions(broker.address(), "w1"));
  meta::WorkerNode w2(WorkerOptions(broker.address(), "w2"));
  if (!w1.Start().ok() || !w2.Start().ok()) {
    fprintf(stderr, "workers failed to join\n");
    return 1;
  }
  printf("workers w1, w2 joined (2 units each)\n");

  int failures = RunPhaseFirst(broker.address());

  printf("stopping w2 (graceful leave -> rebalance onto w1)\n");
  w2.Stop();
  failures += RunPhaseSecond(broker.address());

  w1.Stop();
  broker.Stop();
  if (failures == 0) {
    printf("SUCCESS: foreign-schema submission and node-leave rebalance "
           "preserved every acked event\n");
    return 0;
  }
  fprintf(stderr, "%d check(s) failed\n", failures);
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && strcmp(argv[1], "broker") == 0) {
    return RunBroker(argc >= 3 ? atoi(argv[2]) : 7411);
  }
  if (argc >= 3 && strcmp(argv[1], "client") == 0) {
    const std::string address = argv[2];
    const std::string phase =
        (argc >= 5 && strcmp(argv[3], "--phase") == 0) ? argv[4] : "first";
    const int failures = phase == "second" ? RunPhaseSecond(address)
                                           : RunPhaseFirst(address);
    // With RAILGUN_TRACE=1 (the client enables itself from the env) a
    // path in RAILGUN_TRACE_EXPORT receives this process's span capture
    // as Chrome-trace JSON — the client-side half of the distributed
    // trace; workers export their own on graceful shutdown.
    const char* trace_export = std::getenv("RAILGUN_TRACE_EXPORT");
    if (trace_export != nullptr && trace_export[0] != '\0') {
      const Status exported =
          trace::Tracer::Global()->ExportToFile(trace_export);
      printf("trace export to %s: %s\n", trace_export,
             exported.ToString().c_str());
    }
    if (failures == 0) {
      printf("phase %s OK\n", phase.c_str());
      return 0;
    }
    return 1;
  }
  return RunSelfContained();
}
