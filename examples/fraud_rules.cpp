// Fraud-rule accuracy demo (the paper's Figure 1 and §2.1): the business
// rule "if the number of transactions of a card in the last 5 minutes is
// higher than 4, block the transaction" evaluated over (a) a true
// real-time sliding window (Railgun) and (b) a 5-minute hopping window
// with a 1-minute hop (the Flink-style approximation).
//
// The burst e1..e5 at minutes 0.9, 1.9, 2.9, 3.9 and 5.4 fits inside
// 5 minutes (span 4.5 min), so the rule must fire on e5 — but no hopping
// instance contains all five events.
#include <cstdio>

#include "baseline/hopping_engine.h"
#include "plan/task_plan.h"
#include "storage/db.h"

using namespace railgun;
using reservoir::FieldType;
using reservoir::FieldValue;

int main() {
  Env::Default()->RemoveDirRecursive("/tmp/railgun-fraud-rules");

  // --- Railgun: real-time sliding window over an event reservoir.
  reservoir::ReservoirOptions ropts;
  ropts.schema_fields = {{"cardId", FieldType::kString},
                         {"amount", FieldType::kDouble}};
  reservoir::Reservoir res(ropts, "/tmp/railgun-fraud-rules/reservoir");
  if (!res.Open().ok()) return 1;
  std::unique_ptr<storage::DB> db;
  if (!storage::DB::Open({}, "/tmp/railgun-fraud-rules/db", &db).ok()) {
    return 1;
  }
  plan::TaskPlan plan(&res, db.get());
  if (!plan.Init().ok()) return 1;
  auto query = query::ParseQuery(
      "SELECT count(*) FROM payments GROUP BY cardId "
      "OVER sliding 5 minutes");
  if (!plan.AddQuery(query.value()).ok()) return 1;

  // --- Baseline: 5-minute hopping window, 1-minute hop.
  std::unique_ptr<storage::DB> hop_db;
  if (!storage::DB::Open({}, "/tmp/railgun-fraud-rules/hopdb", &hop_db)
           .ok()) {
    return 1;
  }
  baseline::HoppingOptions hopts;
  hopts.window_size = 5 * kMicrosPerMinute;
  hopts.hop = kMicrosPerMinute;
  baseline::HoppingEngine hopping(hopts, hop_db.get());

  printf("rule: block when count(last 5 min) > 4\n\n");
  printf("%-8s %-22s %-22s\n", "event", "sliding count (rule?)",
         "hopping count (rule?)");

  const double minutes[] = {0.9, 1.9, 2.9, 3.9, 5.4};
  uint64_t id = 0;
  for (double m : minutes) {
    reservoir::Event e;
    e.timestamp = static_cast<Micros>(m * kMicrosPerMinute);
    e.id = ++id;
    e.offset = id;
    e.values = {FieldValue("card1"), FieldValue(50.0)};

    bool accepted;
    res.Append(e, &accepted);
    std::vector<plan::MetricResult> results;
    plan.ProcessEvent(e, &results);
    const double sliding_count = results[0].value.ToNumber();

    baseline::BaselineResult hop_result;
    hopping.ProcessEvent("card1", e.timestamp, 50.0, &hop_result);

    char label[16];
    snprintf(label, sizeof(label), "e%llu@%.1fm",
             static_cast<unsigned long long>(id), m);
    printf("%-8s %-22s %-22s\n", label,
           (std::to_string(static_cast<int>(sliding_count)) +
            (sliding_count > 4 ? "  BLOCK" : "  pass"))
               .c_str(),
           (std::to_string(hop_result.count) +
            (hop_result.count > 4 ? "  BLOCK" : "  pass"))
               .c_str());
  }

  printf(
      "\nThe sliding window catches the burst on e5 (count=5 > 4); the\n"
      "hopping approximation never sees all five events in one window\n"
      "(paper Figure 1), so the rule silently fails to fire.\n");
  return 0;
}
