// Fraud-rule accuracy demo (the paper's Figure 1 and §2.1): the business
// rule "if the number of transactions of a card in the last 5 minutes is
// higher than 4, block the transaction" evaluated over (a) a true
// real-time sliding window (Railgun, through the client API) and (b) a
// 5-minute hopping window with a 1-minute hop (the Flink-style
// approximation, from src/baseline).
//
// The burst e1..e5 at minutes 0.9, 1.9, 2.9, 3.9 and 5.4 fits inside
// 5 minutes (span 4.5 min), so the rule must fire on e5 — but no hopping
// instance contains all five events.
#include <cstdio>
#include <string>

#include "api/client.h"
#include "baseline/hopping_engine.h"
#include "common/logging.h"
#include "storage/db.h"

using namespace railgun;
using api::Client;
using api::ClientOptions;
using api::EventResult;
using api::MetricValue;
using api::Row;

int main() {
  // --- Railgun: real-time sliding window served by a one-node cluster.
  ClientOptions options;
  options.num_nodes = 1;
  options.processor_units_per_node = 1;
  options.base_dir = "/tmp/railgun-fraud-rules";
  Client client(options);
  if (!client.Start().ok()) return 1;
  if (!client
           .CreateStream("CREATE STREAM payments (cardId STRING, "
                         "amount DOUBLE) PARTITION BY cardId")
           .ok() ||
      !client
           .Query("ADD METRIC SELECT count(*) FROM payments "
                  "GROUP BY cardId OVER sliding 5 minutes")
           .ok()) {
    return 1;
  }

  // --- Baseline: 5-minute hopping window, 1-minute hop.
  (void)Env::Default()->RemoveDirRecursive("/tmp/railgun-fraud-rules-hopdb");
  std::unique_ptr<storage::DB> hop_db;
  if (!storage::DB::Open({}, "/tmp/railgun-fraud-rules-hopdb", &hop_db)
           .ok()) {
    return 1;
  }
  baseline::HoppingOptions hopts;
  hopts.window_size = 5 * kMicrosPerMinute;
  hopts.hop = kMicrosPerMinute;
  baseline::HoppingEngine hopping(hopts, hop_db.get());

  printf("rule: block when count(last 5 min) > 4\n\n");
  printf("%-8s %-22s %-22s\n", "event", "sliding count (rule?)",
         "hopping count (rule?)");

  const double minutes[] = {0.9, 1.9, 2.9, 3.9, 5.4};
  uint64_t id = 0;
  for (double m : minutes) {
    const Micros ts = static_cast<Micros>(m * kMicrosPerMinute);
    ++id;

    const EventResult result = client.SubmitSync(
        "payments", Row()
                        .At(ts)
                        .WithId(id)
                        .Set("cardId", "card1")
                        .Set("amount", 50.0));
    const MetricValue* count = result.Find("count(*)", "card1");
    const int sliding_count =
        count != nullptr ? static_cast<int>(count->value.ToNumber()) : -1;

    baseline::BaselineResult hop_result;
    RAILGUN_CHECK_OK(hopping.ProcessEvent("card1", ts, 50.0, &hop_result));

    char label[16];
    snprintf(label, sizeof(label), "e%llu@%.1fm",
             static_cast<unsigned long long>(id), m);
    printf("%-8s %-22s %-22s\n", label,
           (std::to_string(sliding_count) +
            (sliding_count > 4 ? "  BLOCK" : "  pass"))
               .c_str(),
           (std::to_string(hop_result.count) +
            (hop_result.count > 4 ? "  BLOCK" : "  pass"))
               .c_str());
  }

  client.Stop();
  printf(
      "\nThe sliding window catches the burst on e5 (count=5 > 4); the\n"
      "hopping approximation never sees all five events in one window\n"
      "(paper Figure 1), so the rule silently fails to fire.\n");
  return 0;
}
