// Metric backfill demo (paper §6 future work): add a new metric to a
// task whose reservoir already holds history, and fill its aggregation
// state from the stored events — possible precisely because Railgun
// keeps raw events in the reservoir (hopping systems discarded them).
#include <cstdio>

#include "plan/task_plan.h"
#include "storage/db.h"

using namespace railgun;
using reservoir::FieldType;
using reservoir::FieldValue;

int main() {
  Env::Default()->RemoveDirRecursive("/tmp/railgun-backfill-example");

  reservoir::ReservoirOptions ropts;
  ropts.schema_fields = {{"cardId", FieldType::kString},
                         {"amount", FieldType::kDouble}};
  ropts.chunk_target_bytes = 8 * 1024;
  reservoir::Reservoir res(ropts, "/tmp/railgun-backfill-example/reservoir");
  if (!res.Open().ok()) return 1;
  std::unique_ptr<storage::DB> db;
  if (!storage::DB::Open({}, "/tmp/railgun-backfill-example/db", &db).ok()) {
    return 1;
  }

  plan::TaskPlan plan(&res, db.get());
  if (!plan.Init().ok()) return 1;
  plan.AddQuery(query::ParseQuery("SELECT count(*) FROM payments "
                                  "GROUP BY cardId OVER sliding 1 hour")
                    .value());

  // Phase 1: a day of history with only count(*) computed.
  printf("phase 1: ingesting 5000 historical events (count(*) only)\n");
  uint64_t id = 0;
  std::vector<plan::MetricResult> results;
  for (int i = 0; i < 5000; ++i) {
    reservoir::Event e;
    e.timestamp = static_cast<Micros>(i) * 17 * kMicrosPerSecond;
    e.id = ++id;
    e.offset = id;
    e.values = {FieldValue("card" + std::to_string(i % 3)),
                FieldValue(2.5)};
    bool accepted;
    res.Append(e, &accepted);
    results.clear();
    plan.ProcessEvent(e, &results);
  }
  printf("  reservoir now holds %llu persisted + buffered events\n",
         static_cast<unsigned long long>(res.LastPersistedOffset()));

  // Phase 2: the analyst adds sum(amount) — and backfills it.
  printf("\nphase 2: adding sum(amount) with backfill from the reservoir\n");
  auto new_metric =
      query::ParseQuery("SELECT sum(amount) FROM payments "
                        "GROUP BY cardId OVER sliding 1 hour");
  if (!plan.AddQueryBackfilled(new_metric.value()).ok()) {
    fprintf(stderr, "backfill failed\n");
    return 1;
  }

  // Phase 3: the very next event reports a fully-warmed sum.
  reservoir::Event e;
  e.timestamp = static_cast<Micros>(5000) * 17 * kMicrosPerSecond;
  e.id = ++id;
  e.offset = id;
  e.values = {FieldValue("card0"), FieldValue(2.5)};
  bool accepted;
  res.Append(e, &accepted);
  results.clear();
  plan.ProcessEvent(e, &results);

  printf("\nfirst event after backfill reports:\n");
  for (const auto& r : results) {
    printf("    %-40s [%s] = %s\n", r.metric_name.c_str(),
           r.group_key.c_str(), r.value.ToString().c_str());
  }
  // The 1-hour window at t=5000*17s covers floor(3600/17)+1 = 212
  // events round-robined over 3 cards, ~71 for card0, plus this one.
  printf("\n(sum == 2.5 x count for card0 proves the backfilled state\n"
         " matches the count metric that lived through the history)\n");
  return 0;
}
