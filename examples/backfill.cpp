// Metric backfill demo (paper §6 future work): add a new metric to a
// stream whose reservoirs already hold history, and watch its
// aggregation state get filled from the stored events — possible
// precisely because Railgun keeps raw events in the reservoir (hopping
// systems discarded them). The whole flow runs through the client API:
// ADD METRIC on a live stream backfills on the running tasks.
#include <cstdio>

#include "api/client.h"

using namespace railgun;
using api::Client;
using api::ClientOptions;
using api::EventResult;
using api::Row;

int main() {
  ClientOptions options;
  options.num_nodes = 1;
  options.processor_units_per_node = 1;
  options.base_dir = "/tmp/railgun-backfill-example";
  Client client(options);
  if (!client.Start().ok()) return 1;

  if (!client
           .CreateStream("CREATE STREAM payments (cardId STRING, "
                         "amount DOUBLE) PARTITION BY cardId")
           .ok() ||
      !client
           .Query("ADD METRIC SELECT count(*) FROM payments "
                  "GROUP BY cardId OVER sliding 1 hour")
           .ok()) {
    return 1;
  }

  // Phase 1: a day of history with only count(*) computed.
  printf("phase 1: ingesting 5000 historical events (count(*) only)\n");
  for (int i = 0; i < 5000; ++i) {
    (void)client.SubmitNoReply(  // Fire-and-forget by design.
        "payments",
        Row()
            .At(static_cast<Micros>(i) * 17 * kMicrosPerSecond)
            .Set("cardId", "card" + std::to_string(i % 3))
            .Set("amount", 2.5));
  }
  const uint64_t processed =
      client.admin().WaitForQuiescence(30 * kMicrosPerSecond);
  printf("  cluster processed %llu events\n",
         static_cast<unsigned long long>(processed));

  // Phase 2: the analyst adds sum(amount) — the running task backfills
  // it from the reservoir history.
  printf("\nphase 2: adding sum(amount) with backfill from the reservoir\n");
  if (!client
           .Query("ADD METRIC SELECT sum(amount) FROM payments "
                  "GROUP BY cardId OVER sliding 1 hour")
           .ok()) {
    fprintf(stderr, "backfill failed\n");
    return 1;
  }

  // Phase 3: the very next event reports a fully-warmed sum (DDL is
  // synchronous: Query() returned after every unit applied it).
  const EventResult result = client.SubmitSync(
      "payments", Row()
                      .At(static_cast<Micros>(5000) * 17 * kMicrosPerSecond)
                      .Set("cardId", "card0")
                      .Set("amount", 2.5));

  printf("\nfirst event after backfill reports:\n%s",
         result.ToString().c_str());
  // The 1-hour window at t=5000*17s covers floor(3600/17)+1 = 212
  // events round-robined over 3 cards, ~71 for card0, plus this one.
  printf("\n(sum == 2.5 x count for card0 proves the backfilled state\n"
         " matches the count metric that lived through the history)\n");
  client.Stop();
  return 0;
}
