// Interactive (or scripted) Railgun shell over railgun::api::Client:
// declare streams and metrics with DDL, feed events and watch per-event
// aggregations — a minimal operator console.
//
//   railgun_repl              # own an in-process cluster
//   railgun_repl host:port    # attach to a remote broker over TCP
//
// In remote mode, `streams`, `stats` and `nodes` answer from the
// broker's metadata service, so the console sees streams and worker
// nodes other processes created; addnode/killnode need a local cluster.
// `stats` additionally prints the engine's self-instrumentation series
// from the built-in __railgun.internals stream — the same table in
// local and remote mode.
//
// Commands (one per line; '#' comments):
//   CREATE STREAM <name> (<field> <TYPE>, ...) PARTITION BY <f>[, ...]
//       [PARTITIONS <n>]
//   ADD METRIC SELECT ...            (or a bare SELECT statement)
//   ADD PIPELINE <name> ON <stream> | filter(...) | by(...) | ...
//   SUBSCRIBE SELECT ...             (streams rows live; Ctrl-C stops)
//   event <stream> ts=<seconds> <field>=<value> ...
//   streams | pipelines | stats [prefix] | nodes | addnode | killnode <i>
//   trace on|off|dump [file]
//   quit
//
// Example session (also works piped from a file):
//   CREATE STREAM payments (cardId STRING, merchantId STRING,
//       amount DOUBLE) PARTITION BY cardId, merchantId PARTITIONS 4
//   ADD METRIC SELECT sum(amount), count(*) FROM payments
//       GROUP BY cardId OVER sliding 5 minutes
//   event payments ts=60 cardId=card1 merchantId=m1 amount=10.5
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "api/client.h"
#include "ops/pipeline.h"
#include "trace/tracer.h"

using namespace railgun;
using api::Client;
using api::ClientOptions;
using api::EventResult;
using api::Row;
using reservoir::FieldType;
using reservoir::FieldValue;

namespace {

bool HandleEvent(Client& client, std::istringstream& in) {
  std::string stream_name;
  in >> stream_name;
  auto schema_or = client.GetSchema(stream_name);
  if (!schema_or.ok()) {
    printf("! %s\n", schema_or.status().ToString().c_str());
    return false;
  }
  const reservoir::Schema& schema = schema_or.value();

  Row row;
  std::string token;
  while (in >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "ts") {
      row.At(static_cast<Micros>(atof(value.c_str()) * kMicrosPerSecond));
      continue;
    }
    const int index = schema.FieldIndex(key);
    if (index < 0) {
      printf("! unknown field: %s\n", key.c_str());
      return false;
    }
    switch (schema.fields()[static_cast<size_t>(index)].type) {
      case FieldType::kString:
        row.Set(key, FieldValue(value));
        break;
      case FieldType::kDouble:
        row.Set(key, FieldValue(atof(value.c_str())));
        break;
      case FieldType::kInt64:
        row.Set(key, FieldValue(static_cast<int64_t>(atoll(value.c_str()))));
        break;
      case FieldType::kBool:
        row.Set(key, FieldValue(value == "true" || value == "1"));
        break;
    }
  }

  const EventResult result = client.SubmitSync(stream_name, row);
  if (!result.ok() && result.metrics.empty()) {
    printf("! %s\n", result.status.ToString().c_str());
    return false;
  }
  printf("%s", result.ToString().c_str());
  return true;
}

// Set by Ctrl-C while a `subscribe` tail is streaming; checked per poll.
std::atomic<bool> g_interrupt{false};
void OnInterrupt(int) { g_interrupt.store(true); }

// Streams a live tail to stdout until Ctrl-C (interactive) or the tail
// goes idle (scripted input, so piped sessions terminate).
void HandleSubscribe(Client& client, const std::string& statement,
                     bool interactive) {
  auto sub = client.Subscribe(statement);
  if (!sub.ok()) {
    printf("! %s\n", sub.status().ToString().c_str());
    return;
  }
  printf("subscribed (id %llu)%s\n",
         static_cast<unsigned long long>(sub.value()->id()),
         interactive ? " — Ctrl-C to stop" : "");
  g_interrupt.store(false);
  auto previous = signal(SIGINT, OnInterrupt);
  std::vector<ops::SubRecord> records;
  int idle = 0;
  while (!g_interrupt.load() && (interactive || idle < 4)) {
    const Status s = sub.value()->Next(&records, 250 * kMicrosPerMilli);
    if (!s.ok()) {
      printf("! %s%s\n", s.ToString().c_str(),
             s.IsNotFound() ? " (hub restarted; re-subscribe)" : "");
      break;
    }
    idle = records.empty() ? idle + 1 : 0;
    for (const auto& record : records) {
      printf("  #%llu @%.3fs", static_cast<unsigned long long>(record.seq),
             static_cast<double>(record.timestamp) / kMicrosPerSecond);
      for (const auto& [name, value] : record.fields) {
        printf(" %s=%s", name.c_str(), value.ToString().c_str());
      }
      printf("\n");
    }
    fflush(stdout);
  }
  signal(SIGINT, previous);
  (void)sub.value()->Cancel();
  printf("unsubscribed (dropped %llu, lag %llu)\n",
         static_cast<unsigned long long>(sub.value()->dropped_total()),
         static_cast<unsigned long long>(sub.value()->lag()));
}

// Lists registered pipelines with per-operator flow counters from the
// internals stream (`ops.pipeline.<name>.opN.<kind>.{in,out,dropped}`).
void HandlePipelines(Client& client) {
  const std::vector<query::PipelineSpec> pipelines = client.ListPipelines();
  if (pipelines.empty()) {
    printf("no pipelines registered\n");
    return;
  }
  std::map<std::string, double> series;
  auto samples = client.InternalsSnapshot();
  if (samples.ok()) {
    for (const auto& s : samples.value()) {
      series[s.metric] += s.value;  // Sum across nodes.
    }
  }
  for (const auto& pipeline : pipelines) {
    printf("%s ON %s\n", pipeline.name.c_str(), pipeline.stream.c_str());
    for (size_t i = 0; i < pipeline.ops.size(); ++i) {
      const std::string base = "ops.pipeline." + pipeline.name + ".op" +
                               std::to_string(i) + "." +
                               query::OpKindName(pipeline.ops[i].kind);
      printf("  | %-40s in=%-8.0f out=%-8.0f dropped=%.0f\n",
             pipeline.ops[i].raw.c_str(), series[base + ".in"],
             series[base + ".out"], series[base + ".dropped"]);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  ClientOptions options;
  options.num_nodes = 1;
  options.processor_units_per_node = 2;
  options.base_dir = "/tmp/railgun-repl";
  if (argc >= 2) options.remote_address = argv[1];
  Client client(options);
  if (!client.Start().ok()) {
    fprintf(stderr, "failed to start %s\n",
            options.remote_address.empty()
                ? "cluster"
                : ("client for " + options.remote_address).c_str());
    return 1;
  }

  const bool interactive = isatty(0);
  if (interactive) {
    printf("railgun shell%s — CREATE STREAM / ADD METRIC / ADD PIPELINE / "
           "SELECT / SUBSCRIBE, event, streams, pipelines, stats [prefix], "
           "trace on|off|dump, nodes, addnode, killnode, quit\n",
           options.remote_address.empty()
               ? ""
               : (" @ " + options.remote_address).c_str());
  }
  std::string line;
  while (true) {
    if (interactive) {
      printf("railgun> ");
      fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (!interactive && !line.empty()) printf("railgun> %s\n", line.c_str());
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;

    std::istringstream in(line);
    std::string command;
    in >> command;
    for (auto& c : command) {
      c = static_cast<char>(tolower(static_cast<unsigned char>(c)));
    }
    if (command == "quit" || command == "exit") break;
    if (command == "create" || command == "add" || command == "select") {
      const Status s = client.Execute(line);
      if (!s.ok()) {
        printf("! %s\n", s.ToString().c_str());
      } else {
        printf("ok\n");
      }
    } else if (command == "subscribe") {
      HandleSubscribe(client, line, interactive);
    } else if (command == "pipelines") {
      HandlePipelines(client);
    } else if (command == "event") {
      HandleEvent(client, in);
    } else if (command == "streams") {
      for (const auto& name : client.ListStreams()) {
        printf("  %s\n", name.c_str());
      }
    } else if (command == "stats") {
      // Optional prefix filters the internals series: `stats trace.`
      // shows only the tracer's stage histograms and counters.
      std::string prefix;
      in >> prefix;
      if (prefix.empty()) printf("%s", client.admin().Describe().c_str());
      // The engine's own metrics, identical in local and remote mode:
      // latest "__railgun.internals" sample per (node, metric).
      auto samples = client.InternalsSnapshot();
      if (!samples.ok()) {
        printf("! internals: %s\n", samples.status().ToString().c_str());
      } else {
        size_t shown = 0;
        for (const auto& s : samples.value()) {
          if (s.metric.compare(0, prefix.size(), prefix) != 0) continue;
          if (shown++ == 0) printf("internals:\n");
          printf("  %-12s %-32s %-10s %.3f\n", s.node.c_str(),
                 s.metric.c_str(), s.kind.c_str(), s.value);
        }
        if (!prefix.empty() && shown == 0) {
          printf("no internals series match '%s'\n", prefix.c_str());
        }
      }
    } else if (command == "trace") {
      std::string action;
      in >> action;
      trace::Tracer* tracer = trace::Tracer::Global();
      if (action == "on") {
        trace::TracerOptions topt;
        topt.sample_every = 1;  // Sample everything: the REPL is manual.
        tracer->Enable(topt);
        printf("tracing on (every request sampled)\n");
      } else if (action == "off") {
        tracer->Disable();
        printf("tracing off\n");
      } else if (action == "dump") {
        std::string path;
        in >> path;
        if (path.empty()) path = "/tmp/railgun-trace.json";
        const Status s = tracer->ExportToFile(path);
        if (s.ok()) {
          printf("wrote %zu span(s) to %s (load in chrome://tracing or "
                 "ui.perfetto.dev)\n",
                 tracer->collected_size(), path.c_str());
        } else {
          printf("! %s\n", s.ToString().c_str());
        }
      } else {
        printf("! usage: trace on|off|dump [file]\n");
      }
    } else if (command == "nodes") {
      printf("%s", client.admin().DescribeNodes().c_str());
    } else if (command == "addnode") {
      auto index = client.admin().AddNode();
      if (index.ok()) {
        printf("node%d added\n", index.value());
      } else {
        printf("! %s\n", index.status().ToString().c_str());
      }
    } else if (command == "killnode") {
      int index = -1;
      in >> index;
      const Status s = client.admin().KillNode(index);
      printf("%s\n", s.ok() ? "killed" : s.ToString().c_str());
    } else {
      printf("! unknown command: %s\n", command.c_str());
    }
  }
  client.Stop();
  return 0;
}
