// Interactive (or scripted) Railgun shell: define streams, register
// metric queries, feed events and watch per-event aggregations — a
// minimal operator console over the cluster API.
//
// Commands (one per line; '#' comments):
//   stream <name> <field>:<type> ...   -- partitioners <field> [...]
//   query  <railgun SQL statement>
//   event  <stream> ts=<seconds> <field>=<value> ...
//   stats
//   quit
//
// Example session (also works piped from a file):
//   stream payments cardId:string merchantId:string amount:double \
//       -- partitioners cardId merchantId
//   query SELECT sum(amount), count(*) FROM payments GROUP BY cardId \
//       OVER sliding 5 minutes
//   event payments ts=60 cardId=card1 merchantId=m1 amount=10.5
#include <atomic>
#include <cstdio>
#include <iostream>
#include <sstream>

#include "engine/cluster.h"

using namespace railgun;
using namespace railgun::engine;
using reservoir::FieldType;
using reservoir::FieldValue;

namespace {

struct Repl {
  Cluster* cluster;
  std::map<std::string, StreamDef> streams;  // Pending + registered.
  uint64_t next_event_id = 1;

  bool HandleStream(std::istringstream& in) {
    StreamDef stream;
    in >> stream.name;
    std::string token;
    bool in_partitioners = false;
    while (in >> token) {
      if (token == "--") continue;
      if (token == "partitioners") {
        in_partitioners = true;
        continue;
      }
      if (in_partitioners) {
        stream.partitioners.push_back(token);
        continue;
      }
      const size_t colon = token.find(':');
      if (colon == std::string::npos) {
        printf("! field must be <name>:<type>: %s\n", token.c_str());
        return false;
      }
      const std::string name = token.substr(0, colon);
      const std::string type = token.substr(colon + 1);
      FieldType ft;
      if (type == "string") {
        ft = FieldType::kString;
      } else if (type == "double" || type == "float") {
        ft = FieldType::kDouble;
      } else if (type == "int" || type == "int64") {
        ft = FieldType::kInt64;
      } else if (type == "bool") {
        ft = FieldType::kBool;
      } else {
        printf("! unknown type: %s\n", type.c_str());
        return false;
      }
      stream.fields.push_back({name, ft});
    }
    if (stream.name.empty() || stream.fields.empty() ||
        stream.partitioners.empty()) {
      printf("! usage: stream <name> <field>:<type>... -- partitioners "
             "<field>...\n");
      return false;
    }
    stream.partitions_per_topic = 4;
    streams[stream.name] = stream;
    const Status s = cluster->RegisterStream(stream);
    if (!s.ok()) {
      printf("! %s\n", s.ToString().c_str());
      return false;
    }
    printf("stream '%s' registered (%zu fields, %zu partitioners)\n",
           stream.name.c_str(), stream.fields.size(),
           stream.partitioners.size());
    return true;
  }

  bool HandleQuery(const std::string& sql) {
    auto parsed = query::ParseQuery(sql);
    if (!parsed.ok()) {
      printf("! parse error: %s\n", parsed.status().ToString().c_str());
      return false;
    }
    auto it = streams.find(parsed->stream);
    if (it == streams.end()) {
      printf("! unknown stream: %s\n", parsed->stream.c_str());
      return false;
    }
    it->second.queries.push_back(parsed.value());
    const Status s = cluster->RegisterStream(it->second);
    if (!s.ok()) {
      printf("! %s\n", s.ToString().c_str());
      return false;
    }
    printf("metric registered over '%s': %s\n", parsed->stream.c_str(),
           parsed->window.ToString().c_str());
    return true;
  }

  bool HandleEvent(std::istringstream& in) {
    std::string stream_name;
    in >> stream_name;
    auto it = streams.find(stream_name);
    if (it == streams.end()) {
      printf("! unknown stream: %s\n", stream_name.c_str());
      return false;
    }
    const StreamDef& stream = it->second;
    const reservoir::Schema schema(0, stream.fields);

    reservoir::Event event;
    event.id = next_event_id++;
    event.values.resize(stream.fields.size());
    std::string token;
    while (in >> token) {
      const size_t eq = token.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "ts") {
        event.timestamp =
            static_cast<Micros>(atof(value.c_str()) * kMicrosPerSecond);
        continue;
      }
      const int index = schema.FieldIndex(key);
      if (index < 0) {
        printf("! unknown field: %s\n", key.c_str());
        return false;
      }
      switch (stream.fields[static_cast<size_t>(index)].type) {
        case FieldType::kString:
          event.values[static_cast<size_t>(index)] = FieldValue(value);
          break;
        case FieldType::kDouble:
          event.values[static_cast<size_t>(index)] =
              FieldValue(atof(value.c_str()));
          break;
        case FieldType::kInt64:
          event.values[static_cast<size_t>(index)] =
              FieldValue(static_cast<int64_t>(atoll(value.c_str())));
          break;
        case FieldType::kBool:
          event.values[static_cast<size_t>(index)] =
              FieldValue(value == "true" || value == "1");
          break;
      }
    }

    std::atomic<bool> done{false};
    const Status s = cluster->node(0)->frontend()->Submit(
        stream_name, event,
        [&done](Status, const std::vector<MetricReply>& results) {
          for (const auto& r : results) {
            printf("    %-45s [%s] = %s\n", r.metric_name.c_str(),
                   r.group_key.c_str(), r.value.ToString().c_str());
          }
          if (results.empty()) printf("    (no metrics registered)\n");
          done = true;
        });
    if (!s.ok()) {
      printf("! %s\n", s.ToString().c_str());
      return false;
    }
    while (!done) MonotonicClock::Default()->SleepMicros(500);
    return true;
  }

  void HandleStats() {
    const UnitStats stats = cluster->TotalStats();
    printf("cluster: %d node(s)\n", cluster->num_nodes());
    printf("  messages processed (active): %llu\n",
           static_cast<unsigned long long>(stats.active_messages));
    printf("  replies sent: %llu\n",
           static_cast<unsigned long long>(stats.replies_sent));
    printf("  rebalances: %llu\n",
           static_cast<unsigned long long>(
               cluster->bus()->rebalance_count()));
    for (int n = 0; n < cluster->num_nodes(); ++n) {
      RailgunNode* node = cluster->node(n);
      for (int u = 0; u < node->num_units(); ++u) {
        printf("  %s: %zu active / %zu replica tasks\n",
               node->unit(u)->unit_id().c_str(),
               node->unit(u)->active_tasks().size(),
               node->unit(u)->replica_tasks().size());
      }
    }
  }
};

}  // namespace

int main() {
  ClusterOptions options;
  options.num_nodes = 1;
  options.node.num_processor_units = 2;
  options.base_dir = "/tmp/railgun-repl";
  Cluster cluster(options);
  if (!cluster.Start().ok()) {
    fprintf(stderr, "failed to start cluster\n");
    return 1;
  }
  Repl repl{&cluster, {}, 1};

  const bool interactive = isatty(0);
  if (interactive) {
    printf("railgun shell — commands: stream, query, event, stats, quit\n");
  }
  std::string line;
  while (true) {
    if (interactive) {
      printf("railgun> ");
      fflush(stdout);
    }
    if (!std::getline(std::cin, line)) break;
    if (!interactive && !line.empty()) printf("railgun> %s\n", line.c_str());
    const size_t first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] == '#') continue;

    std::istringstream in(line);
    std::string command;
    in >> command;
    if (command == "quit" || command == "exit") break;
    if (command == "stream") {
      repl.HandleStream(in);
    } else if (command == "query") {
      std::string rest;
      std::getline(in, rest);
      repl.HandleQuery(rest);
    } else if (command == "event") {
      repl.HandleEvent(in);
    } else if (command == "stats") {
      repl.HandleStats();
    } else {
      printf("! unknown command: %s\n", command.c_str());
    }
  }
  cluster.Stop();
  return 0;
}
