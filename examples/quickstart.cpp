// Quickstart: start a one-node Railgun cluster through the client API,
// declare the paper's payments stream and its Q1/Q2 metrics with DDL,
// submit a few events and print the per-event aggregations returned to
// the client.
//
//   SELECT SUM(amount), COUNT(*) FROM payments
//     GROUP BY cardId OVER sliding 5 minutes                      (Q1)
//   SELECT AVG(amount) FROM payments
//     GROUP BY merchantId OVER sliding 5 minutes                  (Q2)
#include <cstdio>

#include "api/client.h"

using namespace railgun;
using api::Client;
using api::ClientOptions;
using api::EventResult;
using api::Row;

int main() {
  // 1. A single-node cluster with two processor units.
  ClientOptions options;
  options.num_nodes = 1;
  options.processor_units_per_node = 2;
  options.base_dir = "/tmp/railgun-quickstart";
  Client client(options);
  if (!client.Start().ok()) {
    fprintf(stderr, "failed to start cluster\n");
    return 1;
  }

  // 2. Declare the payments stream and its metrics — textually,
  //    end-to-end.
  const char* ddl[] = {
      "CREATE STREAM payments (cardId STRING, merchantId STRING, "
      "amount DOUBLE) PARTITION BY cardId, merchantId PARTITIONS 4",
      "ADD METRIC SELECT sum(amount), count(*) FROM payments "
      "GROUP BY cardId OVER sliding 5 minutes",
      "ADD METRIC SELECT avg(amount) FROM payments "
      "GROUP BY merchantId OVER sliding 5 minutes",
  };
  for (const char* statement : ddl) {
    const Status s = client.Execute(statement);
    if (!s.ok()) {
      fprintf(stderr, "%s\n  while executing: %s\n", s.ToString().c_str(),
              statement);
      return 1;
    }
  }

  // 3. Submit events and print each reply.
  struct Payment {
    Micros minute;
    const char* card;
    const char* merchant;
    double amount;
  };
  const Payment payments[] = {
      {1, "card1", "storeA", 10.0}, {2, "card1", "storeB", 25.0},
      {3, "card2", "storeA", 99.0}, {4, "card1", "storeA", 5.0},
      {7, "card1", "storeB", 60.0},  // The minute-1 event has expired here.
  };

  for (const Payment& p : payments) {
    const EventResult result = client.SubmitSync(
        "payments", Row()
                        .At(p.minute * kMicrosPerMinute)
                        .Set("cardId", p.card)
                        .Set("merchantId", p.merchant)
                        .Set("amount", p.amount));
    printf("t=%lldmin:\n%s", static_cast<long long>(p.minute),
           result.ToString().c_str());
  }

  client.Stop();
  printf("done.\n");
  return 0;
}
