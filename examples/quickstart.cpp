// Quickstart: start a one-node Railgun cluster, register the paper's Q1
// and Q2 metrics over a payments stream, submit a few events and print
// the per-event aggregations returned to the client.
//
//   SELECT SUM(amount), COUNT(*) FROM payments
//     GROUP BY cardId OVER sliding 5 minutes                      (Q1)
//   SELECT AVG(amount) FROM payments
//     GROUP BY merchantId OVER sliding 5 minutes                  (Q2)
#include <atomic>
#include <cstdio>

#include "engine/cluster.h"

using namespace railgun;
using namespace railgun::engine;
using reservoir::FieldType;
using reservoir::FieldValue;

int main() {
  // 1. A single-node cluster with two processor units.
  ClusterOptions options;
  options.num_nodes = 1;
  options.node.num_processor_units = 2;
  options.base_dir = "/tmp/railgun-quickstart";
  Cluster cluster(options);
  if (!cluster.Start().ok()) {
    fprintf(stderr, "failed to start cluster\n");
    return 1;
  }

  // 2. Register the payments stream: schema, partitioners and metrics.
  StreamDef stream;
  stream.name = "payments";
  stream.fields = {{"cardId", FieldType::kString},
                   {"merchantId", FieldType::kString},
                   {"amount", FieldType::kDouble}};
  stream.partitioners = {"cardId", "merchantId"};
  stream.partitions_per_topic = 4;
  stream.queries = {
      query::ParseQuery("SELECT sum(amount), count(*) FROM payments "
                        "GROUP BY cardId OVER sliding 5 minutes")
          .value(),
      query::ParseQuery("SELECT avg(amount) FROM payments "
                        "GROUP BY merchantId OVER sliding 5 minutes")
          .value()};
  if (!cluster.RegisterStream(stream).ok()) {
    fprintf(stderr, "failed to register stream\n");
    return 1;
  }

  // 3. Submit events and print each reply.
  std::atomic<int> outstanding{0};
  struct Payment {
    Micros minute;
    const char* card;
    const char* merchant;
    double amount;
  };
  const Payment payments[] = {
      {1, "card1", "storeA", 10.0}, {2, "card1", "storeB", 25.0},
      {3, "card2", "storeA", 99.0}, {4, "card1", "storeA", 5.0},
      {7, "card1", "storeB", 60.0},  // The minute-1 event has expired here.
  };

  uint64_t id = 0;
  for (const Payment& p : payments) {
    reservoir::Event e;
    e.timestamp = p.minute * kMicrosPerMinute;
    e.id = ++id;
    e.values = {FieldValue(p.card), FieldValue(p.merchant),
                FieldValue(p.amount)};
    ++outstanding;
    const Micros ts_minutes = p.minute;
    cluster.node(0)->frontend()->Submit(
        "payments", e,
        [&outstanding, ts_minutes](Status /*status*/,
                                   const std::vector<MetricReply>& results) {
          printf("t=%lldmin:\n", static_cast<long long>(ts_minutes));
          for (const auto& r : results) {
            printf("    %-45s [%s] = %s\n", r.metric_name.c_str(),
                   r.group_key.c_str(), r.value.ToString().c_str());
          }
          --outstanding;
        });
    // Keep output ordered for the demo.
    while (outstanding > 0) {
      MonotonicClock::Default()->SleepMicros(1000);
    }
  }

  cluster.Stop();
  printf("done.\n");
  return 0;
}
