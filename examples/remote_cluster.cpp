// Remote cluster: the quickstart flow split across a real TCP hop.
//
// The serving side is a meta::Broker — the cluster (here with one
// colocated processing node), the BusServer exposing its message bus,
// and the metadata service that applies remote DDL. The client side is
// a plain api::Client with remote_address set — it runs its own front
// end against a RemoteBus and never links any engine state. For the
// fully distributed topology (processor units in their own processes),
// see examples/multi_process_cluster and tools/railgun_noded.
//
// Run as two processes:
//   ./remote_cluster server 7311          # Terminal 1
//   ./remote_cluster client 127.0.0.1:7311  # Terminal 2
// or as a self-contained demo (server thread + client in one process):
//   ./remote_cluster
#include <cstdio>
#include <cstring>

#include "api/client.h"
#include "meta/broker.h"

using namespace railgun;
using api::Client;
using api::ClientOptions;
using api::EventResult;
using api::Row;

namespace {

meta::BrokerOptions ServerOptions(int port) {
  meta::BrokerOptions options;
  options.port = port;
  options.cluster.num_nodes = 1;
  options.cluster.node.num_processor_units = 2;
  options.cluster.base_dir = "/tmp/railgun-remote-cluster";
  return options;
}

int RunClient(const std::string& address) {
  ClientOptions options;
  options.remote_address = address;
  Client client(options);
  Status s = client.Start();
  if (!s.ok()) {
    fprintf(stderr, "failed to attach to %s: %s\n", address.c_str(),
            s.ToString().c_str());
    return 1;
  }
  printf("attached to cluster at %s\n", address.c_str());

  const char* ddl[] = {
      "CREATE STREAM payments (cardId STRING, merchantId STRING, "
      "amount DOUBLE) PARTITION BY cardId, merchantId PARTITIONS 4",
      "ADD METRIC SELECT sum(amount), count(*) FROM payments "
      "GROUP BY cardId OVER sliding 5 minutes",
      "ADD METRIC SELECT avg(amount) FROM payments "
      "GROUP BY merchantId OVER sliding 5 minutes",
  };
  for (const char* statement : ddl) {
    s = client.Execute(statement);
    if (!s.ok() && !s.IsAlreadyExists()) {
      fprintf(stderr, "%s\n  while executing: %s\n", s.ToString().c_str(),
              statement);
      return 1;
    }
  }

  struct Payment {
    Micros minute;
    const char* card;
    const char* merchant;
    double amount;
  };
  const Payment payments[] = {
      {1, "card1", "storeA", 10.0}, {2, "card1", "storeB", 25.0},
      {3, "card2", "storeA", 99.0}, {4, "card1", "storeA", 5.0},
      {7, "card1", "storeB", 60.0},
  };
  for (const Payment& p : payments) {
    const EventResult result = client.SubmitSync(
        "payments", Row()
                        .At(p.minute * kMicrosPerMinute)
                        .Set("cardId", p.card)
                        .Set("merchantId", p.merchant)
                        .Set("amount", p.amount));
    printf("t=%lldmin:\n%s", static_cast<long long>(p.minute),
           result.ToString().c_str());
  }
  client.Stop();
  printf("done.\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && strcmp(argv[1], "server") == 0) {
    const int port = argc >= 3 ? atoi(argv[2]) : 7311;
    meta::Broker server(ServerOptions(port));
    if (!server.Start().ok()) {
      fprintf(stderr, "failed to start server\n");
      return 1;
    }
    printf("serving railgun cluster on %s (ctrl-c to stop)\n",
           server.address().c_str());
    for (;;) MonotonicClock::Default()->SleepMicros(kMicrosPerSecond);
  }
  if (argc >= 3 && strcmp(argv[1], "client") == 0) {
    return RunClient(argv[2]);
  }

  // Self-contained demo: server and client in one process, still over a
  // real loopback socket.
  meta::Broker server(ServerOptions(0));
  if (!server.Start().ok()) {
    fprintf(stderr, "failed to start server\n");
    return 1;
  }
  printf("serving railgun cluster on %s\n", server.address().c_str());
  const int rc = RunClient(server.address());
  server.Stop();
  return rc;
}
