// Fault-tolerance demo (paper §4.2): a 3-node cluster with replication
// factor 2 keeps serving accurate metrics through a node failure. The
// example prints the task assignment before and after the failure and
// verifies that a card's transaction count stays exact across the kill.
#include <atomic>
#include <cstdio>

#include "engine/cluster.h"

using namespace railgun;
using namespace railgun::engine;
using reservoir::FieldType;
using reservoir::FieldValue;

namespace {

void PrintAssignments(Cluster& cluster, const char* label) {
  printf("\n--- task assignment %s ---\n", label);
  for (int n = 0; n < cluster.num_nodes(); ++n) {
    RailgunNode* node = cluster.node(n);
    if (!node->alive()) {
      printf("  %s: DEAD\n", node->id().c_str());
      continue;
    }
    for (int u = 0; u < node->num_units(); ++u) {
      ProcessorUnit* unit = node->unit(u);
      printf("  %s: %zu active, %zu replica tasks\n",
             unit->unit_id().c_str(), unit->active_tasks().size(),
             unit->replica_tasks().size());
    }
  }
}

}  // namespace

int main() {
  ClusterOptions options;
  options.num_nodes = 3;
  options.replication_factor = 2;
  options.node.num_processor_units = 2;
  options.node.unit.task.checkpoint_interval_events = 100;
  options.base_dir = "/tmp/railgun-failover-example";
  Cluster cluster(options);
  if (!cluster.Start().ok()) return 1;

  StreamDef stream;
  stream.name = "payments";
  stream.fields = {{"cardId", FieldType::kString},
                   {"amount", FieldType::kDouble}};
  stream.partitioners = {"cardId"};
  stream.partitions_per_topic = 6;
  stream.queries = {
      query::ParseQuery("SELECT count(*), sum(amount) FROM payments "
                        "GROUP BY cardId OVER sliding 1 hour")
          .value()};
  if (!cluster.RegisterStream(stream).ok()) return 1;

  std::atomic<int> replies{0};
  std::atomic<long> last_count{0};
  auto submit = [&](int i) {
    reservoir::Event e;
    e.timestamp = static_cast<Micros>(i) * kMicrosPerSecond;
    e.id = static_cast<uint64_t>(i + 1);
    e.values = {FieldValue("card-vip"), FieldValue(9.99)};
    cluster.node(0)->frontend()->Submit(
        "payments", e,
        [&](Status, const std::vector<MetricReply>& results) {
          for (const auto& r : results) {
            if (r.metric_name.rfind("count", 0) == 0) {
              last_count = static_cast<long>(r.value.ToNumber());
            }
          }
          ++replies;
        });
    MonotonicClock::Default()->SleepMicros(2000);
  };

  printf("phase 1: 100 transactions on card-vip across 3 nodes\n");
  for (int i = 0; i < 100; ++i) submit(i);
  while (replies < 100) MonotonicClock::Default()->SleepMicros(5000);
  PrintAssignments(cluster, "before failure");
  printf("count(card-vip) = %ld (expect 100)\n", last_count.load());

  printf("\nphase 2: killing node2 (replication factor 2 covers it)\n");
  cluster.KillNode(2);

  for (int i = 100; i < 200; ++i) submit(i);
  for (int w = 0; w < 2000 && replies < 200; ++w) {
    MonotonicClock::Default()->SleepMicros(10000);
  }
  PrintAssignments(cluster, "after failure");
  printf("count(card-vip) = %ld (expect 200 — no lost or double-counted "
         "events)\n", last_count.load());

  const UnitStats stats = cluster.TotalStats();
  printf("\nrecoveries from donors: %llu, fresh tasks: %llu, "
         "bytes copied: %llu\n",
         static_cast<unsigned long long>(stats.recoveries),
         static_cast<unsigned long long>(stats.fresh_tasks),
         static_cast<unsigned long long>(stats.bytes_recovered));
  printf("bus rebalances: %llu, sticky moves (active): %d\n",
         static_cast<unsigned long long>(cluster.bus()->rebalance_count()),
         cluster.coordinator()->total_moved_active());

  cluster.Stop();
  printf("\n%s\n", last_count.load() == 200 ? "SUCCESS: accuracy preserved "
                                              "through failure"
                                            : "FAILURE: count diverged");
  return last_count.load() == 200 ? 0 : 1;
}
