// Fault-tolerance demo (paper §4.2): a 3-node cluster with replication
// factor 2 keeps serving accurate metrics through a node failure. The
// example prints the task assignment before and after the failure and
// verifies that a card's transaction count stays exact across the kill.
// Everything runs through railgun::api::Client / Admin.
#include <cstdio>

#include "api/client.h"
#include "common/logging.h"

using namespace railgun;
using api::Client;
using api::ClientOptions;
using api::ClusterStats;
using api::EventResult;
using api::MetricValue;
using api::Row;

int main() {
  ClientOptions options;
  options.num_nodes = 3;
  options.replication_factor = 2;
  options.processor_units_per_node = 2;
  options.engine.node.unit.task.checkpoint_interval_events = 100;
  options.base_dir = "/tmp/railgun-failover-example";
  Client client(options);
  if (!client.Start().ok()) return 1;

  if (!client
           .CreateStream("CREATE STREAM payments (cardId STRING, "
                         "amount DOUBLE) PARTITION BY cardId PARTITIONS 6")
           .ok() ||
      !client
           .Query("ADD METRIC SELECT count(*), sum(amount) FROM payments "
                  "GROUP BY cardId OVER sliding 1 hour")
           .ok()) {
    return 1;
  }

  long last_count = 0;
  auto submit = [&](int i) {
    const EventResult result = client.SubmitSync(
        "payments", Row()
                        .At(static_cast<Micros>(i) * kMicrosPerSecond)
                        .WithId(static_cast<uint64_t>(i + 1))
                        .Set("cardId", "card-vip")
                        .Set("amount", 9.99));
    if (const MetricValue* count = result.Find("count(*)")) {
      last_count = static_cast<long>(count->value.ToNumber());
    }
  };

  printf("phase 1: 100 transactions on card-vip across 3 nodes\n");
  for (int i = 0; i < 100; ++i) submit(i);
  printf("\n--- task assignment before failure ---\n%s",
         client.admin().Describe().c_str());
  printf("count(card-vip) = %ld (expect 100)\n", last_count);

  printf("\nphase 2: killing node2 (replication factor 2 covers it)\n");
  RAILGUN_CHECK_OK(client.admin().KillNode(2));

  for (int i = 100; i < 200; ++i) submit(i);
  printf("\n--- task assignment after failure ---\n%s",
         client.admin().Describe().c_str());
  printf("count(card-vip) = %ld (expect 200 — no lost or double-counted "
         "events)\n", last_count);

  const ClusterStats stats = client.admin().TotalStats();
  printf("\nrecoveries from donors: %llu, fresh tasks: %llu, "
         "bytes copied: %llu\n",
         static_cast<unsigned long long>(stats.recoveries),
         static_cast<unsigned long long>(stats.fresh_tasks),
         static_cast<unsigned long long>(stats.bytes_recovered));
  printf("bus rebalances: %llu\n",
         static_cast<unsigned long long>(stats.rebalances));

  client.Stop();
  printf("\n%s\n", last_count == 200 ? "SUCCESS: accuracy preserved "
                                       "through failure"
                                     : "FAILURE: count diverged");
  return last_count == 200 ? 0 : 1;
}
