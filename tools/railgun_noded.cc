// railgun_noded — the Railgun worker daemon. Joins a remote broker
// (meta::Broker / BusServer + MetadataService), announces itself to the
// membership service, fetches every registered stream, and runs its
// processor units against the broker's message bus over TCP. A
// deployment is 1 broker process + N of these + M api::Client
// processes (the paper's N-machine topology).
//
//   railgun_noded <broker-host:port> [--node-id ID] [--units N]
//                 [--dir PATH] [--heartbeat-ms MS] [--address ADDR]
//
// SIGTERM / SIGINT trigger a graceful departure: metadata Leave plus a
// clean consumer-group unsubscribe (one rebalance, no lease wait).
// Killing it abruptly exercises the lease-expiry path instead.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"
#include "meta/worker_node.h"
#include "trace/tracer.h"

using namespace railgun;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s <broker-host:port> [--node-id ID] [--units N] "
          "[--dir PATH] [--heartbeat-ms MS] [--address ADDR]\n",
          argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);

  meta::WorkerNodeOptions options;
  options.broker_address = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (strcmp(arg, "--node-id") == 0 && has_value) {
      options.node_id = argv[++i];
    } else if (strcmp(arg, "--units") == 0 && has_value) {
      options.num_units = atoi(argv[++i]);
    } else if (strcmp(arg, "--dir") == 0 && has_value) {
      options.base_dir = argv[++i];
    } else if (strcmp(arg, "--heartbeat-ms") == 0 && has_value) {
      options.heartbeat_period = atoll(argv[++i]) * kMicrosPerMilli;
    } else if (strcmp(arg, "--address") == 0 && has_value) {
      options.address = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.num_units <= 0) {
    RAILGUN_LOG(kError, "noded", "--units must be positive");
    return 2;
  }

  // RAILGUN_TRACE=1 turns on span recording; RAILGUN_TRACE_EXPORT=path
  // dumps the capture as Chrome-trace JSON on graceful shutdown.
  trace::Tracer::InitFromEnvOnce();

  meta::WorkerNode worker(options);
  const Status started = worker.Start();
  if (!started.ok()) {
    RAILGUN_LOG(kError, "noded", "failed to join broker at %s: %s",
                options.broker_address.c_str(),
                started.ToString().c_str());
    return 1;
  }
  RAILGUN_LOG(kInfo, "noded",
              "%s joined %s with %d unit(s), lease %lld ms (SIGTERM to "
              "leave gracefully)",
              worker.node_id().c_str(), options.broker_address.c_str(),
              options.num_units,
              static_cast<long long>(worker.lease_timeout() /
                                     kMicrosPerMilli));

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_stop == 0) {
    MonotonicClock::Default()->SleepMicros(50 * kMicrosPerMilli);
  }

  RAILGUN_LOG(kInfo, "noded", "%s leaving", worker.node_id().c_str());
  worker.Stop();

  const char* trace_export = std::getenv("RAILGUN_TRACE_EXPORT");
  if (trace_export != nullptr && trace_export[0] != '\0') {
    const Status exported =
        trace::Tracer::Global()->ExportToFile(trace_export);
    if (exported.ok()) {
      RAILGUN_LOG(kInfo, "noded", "%s wrote trace to %s",
                  worker.node_id().c_str(), trace_export);
    } else {
      RAILGUN_LOG(kWarn, "noded", "%s trace export to %s failed: %s",
                  worker.node_id().c_str(), trace_export,
                  exported.ToString().c_str());
    }
  }
  return 0;
}
