// railgun_noded — the Railgun worker daemon. Joins a remote broker
// (meta::Broker / BusServer + MetadataService), announces itself to the
// membership service, fetches every registered stream, and runs its
// processor units against the broker's message bus over TCP. A
// deployment is 1 broker process + N of these + M api::Client
// processes (the paper's N-machine topology).
//
//   railgun_noded <broker-host:port> [--node-id ID] [--units N]
//                 [--dir PATH] [--heartbeat-ms MS] [--address ADDR]
//
// SIGTERM / SIGINT trigger a graceful departure: metadata Leave plus a
// clean consumer-group unsubscribe (one rebalance, no lease wait).
// Killing it abruptly exercises the lease-expiry path instead.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "meta/worker_node.h"

using namespace railgun;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

int Usage(const char* argv0) {
  fprintf(stderr,
          "usage: %s <broker-host:port> [--node-id ID] [--units N] "
          "[--dir PATH] [--heartbeat-ms MS] [--address ADDR]\n",
          argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);

  meta::WorkerNodeOptions options;
  options.broker_address = argv[1];
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    const bool has_value = i + 1 < argc;
    if (strcmp(arg, "--node-id") == 0 && has_value) {
      options.node_id = argv[++i];
    } else if (strcmp(arg, "--units") == 0 && has_value) {
      options.num_units = atoi(argv[++i]);
    } else if (strcmp(arg, "--dir") == 0 && has_value) {
      options.base_dir = argv[++i];
    } else if (strcmp(arg, "--heartbeat-ms") == 0 && has_value) {
      options.heartbeat_period = atoll(argv[++i]) * kMicrosPerMilli;
    } else if (strcmp(arg, "--address") == 0 && has_value) {
      options.address = argv[++i];
    } else {
      return Usage(argv[0]);
    }
  }
  if (options.num_units <= 0) {
    fprintf(stderr, "--units must be positive\n");
    return 2;
  }

  meta::WorkerNode worker(options);
  const Status started = worker.Start();
  if (!started.ok()) {
    fprintf(stderr, "failed to join broker at %s: %s\n",
            options.broker_address.c_str(), started.ToString().c_str());
    return 1;
  }
  printf("railgun_noded %s: joined %s with %d unit(s), lease %lld ms "
         "(SIGTERM to leave gracefully)\n",
         worker.node_id().c_str(), options.broker_address.c_str(),
         options.num_units,
         static_cast<long long>(worker.lease_timeout() / kMicrosPerMilli));
  fflush(stdout);

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);
  while (g_stop == 0) {
    MonotonicClock::Default()->SleepMicros(50 * kMicrosPerMilli);
  }

  printf("railgun_noded %s: leaving\n", worker.node_id().c_str());
  fflush(stdout);
  worker.Stop();
  return 0;
}
