#!/usr/bin/env bash
# clang-format gate over the first-party C++ sources (src/, tests/,
# examples/, bench/). Exits non-zero when any file needs reformatting;
# run `scripts/check_format.sh --fix` to apply the formatting in place.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null 2>&1; then
  echo "check_format: clang-format not found; skipping" >&2
  exit 0
fi

mode=(--dry-run --Werror)
if [[ "${1:-}" == "--fix" ]]; then
  mode=(-i)
fi

mapfile -t files < <(find src tests examples bench \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) | sort)

clang-format "${mode[@]}" --style=file "${files[@]}"
echo "check_format: ${#files[@]} files checked"
