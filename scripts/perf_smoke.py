#!/usr/bin/env python3
"""Perf smoke: diff fresh bench JSON against a checked-in baseline.

Usage: perf_smoke.py <baseline.json> <fresh.json> [threshold]

Compares every key ending in `_events_per_sec` that both files share and
emits a GitHub Actions `::warning::` annotation when the fresh number
falls more than `threshold` (default 10%) below the baseline. CI shared
runners are far too noisy for a hard cross-run perf gate, so baseline
comparisons always pass — the annotations make regressions visible on
the PR without flaking it.

Tracing overhead gates (within the *fresh* file, so runner speed cancels
out): when the fresh results carry the tracing variants, the
tracer-disabled run must stay within 1% of the untraced reference
(`batched_events_per_sec` or, for the hop bench, the loopback series) —
this one is HARD and fails the job, since a disabled tracer is supposed
to cost one relaxed atomic load per hop. The 1-in-1024 sampled run gets
a warn-only 5% allowance.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(f"usage: {sys.argv[0]} <baseline.json> <fresh.json> [threshold]")
        return 0
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 0.10
    try:
        with open(sys.argv[1]) as f:
            baseline = json.load(f)
        with open(sys.argv[2]) as f:
            fresh = json.load(f)
    except (OSError, ValueError) as e:
        print(f"::warning::perf_smoke could not load results: {e}")
        return 0

    keys = [
        k
        for k in baseline
        if k.endswith("_events_per_sec") and k in fresh
    ]
    if not keys:
        print("::warning::perf_smoke found no comparable *_events_per_sec keys")
        return 0

    for key in sorted(keys):
        base, now = float(baseline[key]), float(fresh[key])
        if base <= 0:
            continue
        ratio = now / base
        line = f"{key}: baseline {base:.0f} -> fresh {now:.0f} ({ratio:.2f}x)"
        if ratio < 1.0 - threshold:
            print(
                f"::warning::perf regression (> {threshold:.0%}): {line}"
            )
        else:
            print(f"perf_smoke ok: {line}")

    return trace_gates(fresh) or ops_hook_gate(fresh)


def ops_hook_gate(fresh: dict) -> int:
    """Hard 1% gate: registering a pipeline on another stream must not
    tax this stream's publish path. Gated on the process-CPU-time rate
    (both series from the same bench_subscribe_fanout run), which holds
    still when co-tenants steal cycles mid-run — wall-clock on shared
    runners swings far more than the 1% budget."""
    plain_key = "fanout_plain_publish_cpu_events_per_sec"
    hooked_key = "fanout_foreign_pipeline_publish_cpu_events_per_sec"
    if plain_key not in fresh or hooked_key not in fresh:
        return 0
    plain, hooked = float(fresh[plain_key]), float(fresh[hooked_key])
    if plain <= 0:
        return 0
    overhead = 1.0 - hooked / plain
    line = (
        f"{hooked_key}: {hooked:.0f} vs {plain_key} {plain:.0f} "
        f"(overhead {overhead:+.1%}, budget 1%)"
    )
    if overhead > 0.01:
        print(f"::error::idle pipeline-hook overhead gate failed: {line}")
        return 1
    print(f"ops_gate ok: {line}")
    return 0


def trace_gates(fresh: dict) -> int:
    """Hard 1% gate on trace_off, warn-only 5% on sampled tracing."""
    reference = None
    for ref_key in ("batched_events_per_sec",
                    "remote_loopback_tcp_events_per_sec"):
        if ref_key in fresh and float(fresh[ref_key]) > 0:
            reference = (ref_key, float(fresh[ref_key]))
            break
    if reference is None:
        return 0
    ref_key, ref = reference

    failed = 0
    for key, budget, hard in (
        ("trace_off_events_per_sec", 0.01, True),
        ("trace_sampled_1_in_1024_events_per_sec", 0.05, False),
    ):
        if key not in fresh:
            continue
        now = float(fresh[key])
        overhead = 1.0 - now / ref
        line = (
            f"{key}: {now:.0f} vs {ref_key} {ref:.0f} "
            f"(overhead {overhead:+.1%}, budget {budget:.0%})"
        )
        if overhead > budget:
            if hard:
                print(f"::error::tracing overhead gate failed: {line}")
                failed = 1
            else:
                print(f"::warning::tracing overhead above budget: {line}")
        else:
            print(f"trace_gate ok: {line}")
    return failed


if __name__ == "__main__":
    sys.exit(main())
