#!/usr/bin/env python3
"""Warn-only perf smoke: diff fresh bench JSON against a checked-in baseline.

Usage: perf_smoke.py <baseline.json> <fresh.json> [threshold]

Compares every key ending in `_events_per_sec` that both files share and
emits a GitHub Actions `::warning::` annotation when the fresh number
falls more than `threshold` (default 10%) below the baseline. CI shared
runners are far too noisy for a hard perf gate, so this always exits 0 —
the annotations make regressions visible on the PR without flaking it.
"""

import json
import sys


def main() -> int:
    if len(sys.argv) < 3:
        print(f"usage: {sys.argv[0]} <baseline.json> <fresh.json> [threshold]")
        return 0
    threshold = float(sys.argv[3]) if len(sys.argv) > 3 else 0.10
    try:
        with open(sys.argv[1]) as f:
            baseline = json.load(f)
        with open(sys.argv[2]) as f:
            fresh = json.load(f)
    except (OSError, ValueError) as e:
        print(f"::warning::perf_smoke could not load results: {e}")
        return 0

    keys = [
        k
        for k in baseline
        if k.endswith("_events_per_sec") and k in fresh
    ]
    if not keys:
        print("::warning::perf_smoke found no comparable *_events_per_sec keys")
        return 0

    for key in sorted(keys):
        base, now = float(baseline[key]), float(fresh[key])
        if base <= 0:
            continue
        ratio = now / base
        line = f"{key}: baseline {base:.0f} -> fresh {now:.0f} ({ratio:.2f}x)"
        if ratio < 1.0 - threshold:
            print(
                f"::warning::perf regression (> {threshold:.0%}): {line}"
            )
        else:
            print(f"perf_smoke ok: {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
