#!/usr/bin/env bash
# Multi-process smoke test: the paper's N-machine topology with real
# separate processes — 1 broker + 2 railgun_noded workers + remote
# api::Client phases (see examples/multi_process_cluster.cpp).
#
# Proves end to end that a client can submit to a stream another
# client's process created (schema via the metadata service), and that
# a graceful worker leave rebalances without losing acked events.
#
#   BUILD_DIR=build ./scripts/multi_process_smoke.sh
#
# Phase second runs with distributed tracing on (every request
# sampled); the client's span capture lands at TRACE_OUT (default
# inside the scratch dir) so CI can upload it as an artifact.
set -u

BUILD_DIR=${BUILD_DIR:-build}
WORK=$(mktemp -d /tmp/railgun-smoke.XXXXXX)
TRACE_OUT=${TRACE_OUT:-${WORK}/client-trace.json}
PIDS=()

fail() {
  echo "FAIL: $*" >&2
  for log in "${WORK}"/*.log; do
    echo "--- ${log} ---" >&2
    cat "${log}" >&2
  done
  cleanup
  exit 1
}

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    kill "${pid}" 2>/dev/null
    wait "${pid}" 2>/dev/null
  done
  rm -rf "${WORK}" /tmp/railgun-mpc-broker
}
trap cleanup EXIT

wait_for() {  # wait_for <seconds> <command...>
  local deadline=$(( $(date +%s) + $1 )); shift
  until "$@" 2>/dev/null; do
    [ "$(date +%s)" -ge "${deadline}" ] && return 1
    sleep 0.2
  done
}

# Port 0 = ephemeral: the kernel picks a free one (no collision with a
# busy CI host) and the broker prints the bound address.
echo "== starting broker on an ephemeral port"
"${BUILD_DIR}/multi_process_cluster" broker 0 \
    > "${WORK}/broker.log" 2>&1 &
PIDS+=($!)
wait_for 15 grep -q "serving on" "${WORK}/broker.log" \
    || fail "broker never came up"
ADDRESS=$(grep -o '127\.0\.0\.1:[0-9]*' "${WORK}/broker.log" | head -1)
[ -n "${ADDRESS}" ] || fail "could not parse broker address"
echo "== broker on ${ADDRESS}"

echo "== joining workers w1, w2"
"${BUILD_DIR}/railgun_noded" "${ADDRESS}" --node-id w1 \
    --dir "${WORK}/w1" > "${WORK}/w1.log" 2>&1 &
PIDS+=($!)
W2_PID_INDEX=${#PIDS[@]}
"${BUILD_DIR}/railgun_noded" "${ADDRESS}" --node-id w2 \
    --dir "${WORK}/w2" > "${WORK}/w2.log" 2>&1 &
PIDS+=($!)
W2_PID=${PIDS[${W2_PID_INDEX}]}
wait_for 15 grep -q "joined" "${WORK}/w1.log" || fail "w1 never joined"
wait_for 15 grep -q "joined" "${WORK}/w2.log" || fail "w2 never joined"

echo "== phase first: declare, submit from two client processes"
timeout 60 "${BUILD_DIR}/multi_process_cluster" client "${ADDRESS}" \
    --phase first || fail "phase first"

echo "== SIGTERM w2 (graceful leave -> rebalance onto w1)"
kill -TERM "${W2_PID}" || fail "w2 already dead"
wait "${W2_PID}"
[ "$?" -eq 0 ] || fail "w2 did not exit cleanly"

echo "== phase second: acked events survive the leave (tracing on)"
RAILGUN_TRACE=1 RAILGUN_TRACE_SAMPLE=1 \
RAILGUN_TRACE_EXPORT="${TRACE_OUT}" \
timeout 60 "${BUILD_DIR}/multi_process_cluster" client "${ADDRESS}" \
    --phase second || fail "phase second"
grep -q '"client.submit"' "${TRACE_OUT}" \
    || fail "trace export has no client.submit spans (${TRACE_OUT})"
echo "== trace capture at ${TRACE_OUT}"

echo "SUCCESS: multi-process smoke passed"
