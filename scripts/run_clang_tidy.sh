#!/usr/bin/env bash
# Run clang-tidy (config: .clang-tidy) over the library sources.
#
# Changed-file aware by default: lints only the .cc files under src/
# that differ from the merge base with $BASE_REF (origin/main, or
# $GITHUB_BASE_REF on a pull request), so the CI gate scales with the
# diff instead of the tree. `--all` lints every file under src/.
#
#   ./scripts/run_clang_tidy.sh [--all] [build-dir]
#
# build-dir (default: build) must contain compile_commands.json
# (CMAKE_EXPORT_COMPILE_COMMANDS is always ON in this project).
# The full log is written to clang-tidy.log next to the build dir so
# CI can upload it as an artifact; exits non-zero on any finding.
set -u -o pipefail

cd "$(dirname "$0")/.."

all=0
if [[ "${1:-}" == "--all" ]]; then
  all=1
  shift
fi
build_dir="${1:-build}"

tidy_bin="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy_bin" >/dev/null 2>&1; then
  echo "run_clang_tidy: $tidy_bin not found; skipping" >&2
  exit 0
fi
if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_clang_tidy: $build_dir/compile_commands.json missing;" \
       "configure with cmake first" >&2
  exit 1
fi

declare -a files
if [[ $all -eq 1 ]]; then
  mapfile -t files < <(find src -name '*.cc' | sort)
else
  base_ref="${BASE_REF:-${GITHUB_BASE_REF:+origin/$GITHUB_BASE_REF}}"
  base_ref="${base_ref:-origin/main}"
  if ! git rev-parse --verify --quiet "$base_ref" >/dev/null; then
    echo "run_clang_tidy: base ref $base_ref not found; linting all" >&2
    mapfile -t files < <(find src -name '*.cc' | sort)
  else
    merge_base="$(git merge-base HEAD "$base_ref")"
    mapfile -t files < <(git diff --name-only --diff-filter=d \
                             "$merge_base" -- 'src/*.cc' | sort)
  fi
fi

if [[ ${#files[@]} -eq 0 ]]; then
  echo "run_clang_tidy: no changed src/*.cc files; nothing to lint"
  exit 0
fi

log="clang-tidy.log"
: > "$log"
echo "run_clang_tidy: linting ${#files[@]} file(s) -> $log"
status=0
for f in "${files[@]}"; do
  echo "--- $f" | tee -a "$log"
  if ! "$tidy_bin" -p "$build_dir" --quiet "$f" 2>&1 | tee -a "$log"; then
    status=1
  fi
done

if [[ $status -ne 0 ]]; then
  echo "run_clang_tidy: findings above (full log: $log)" >&2
fi
exit $status
