// Tests for the remote transport: wire-protocol robustness (truncated
// frames and flipped bits must yield Status::Corruption, unknown
// opcodes a typed NotSupported response, never a crash),
// RemoteBus <-> BusServer behavior over a loopback socket
// (produce/poll, blocking poll wake-on-arrival, rebalance callback
// streaming), the full remote api::Client quickstart flow, and
// kill-the-server failure handling.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <set>
#include <thread>

#include "api/client.h"
#include "api/remote_ddl.h"
#include "common/clock.h"
#include "engine/cluster.h"
#include "meta/broker.h"
#include "msg/broker.h"
#include "msg/remote/bus_server.h"
#include "msg/remote/remote_bus.h"
#include "msg/remote/socket.h"
#include "msg/remote/wire.h"
#include "ops/sub_wire.h"
#include "trace/trace_context.h"
#include "trace/tracer.h"

namespace railgun::msg::remote {
namespace {

Frame SampleFrame() {
  Frame frame;
  frame.correlation_id = 0x12345;
  frame.opcode = static_cast<uint8_t>(OpCode::kProduce);
  PutLengthPrefixedSlice(&frame.payload, "topic");
  PutLengthPrefixedSlice(&frame.payload, "key");
  PutLengthPrefixedSlice(&frame.payload, "payload-bytes");
  return frame;
}

TEST(WireTest, FrameRoundTrip) {
  const Frame frame = SampleFrame();
  std::string wire;
  EncodeFrame(frame, &wire);

  Slice in(wire);
  Frame decoded;
  ASSERT_TRUE(DecodeFrame(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded.correlation_id, frame.correlation_id);
  EXPECT_EQ(decoded.opcode, frame.opcode);
  EXPECT_EQ(decoded.payload, frame.payload);
}

TEST(WireTest, EveryTruncationIsCorruptionNeverACrash) {
  std::string wire;
  EncodeFrame(SampleFrame(), &wire);
  for (size_t len = 0; len < wire.size(); ++len) {
    const std::string prefix = wire.substr(0, len);
    Slice in(prefix);
    Frame decoded;
    const Status status = DecodeFrame(&in, &decoded);
    EXPECT_TRUE(status.IsCorruption()) << "prefix length " << len;
  }
}

TEST(WireTest, EveryBitFlipFailsTheChecksum) {
  std::string wire;
  EncodeFrame(SampleFrame(), &wire);
  // Flip one bit per byte across the whole frame. Header corruptions
  // may surface as bad lengths; body corruptions must fail the CRC.
  for (size_t i = 0; i < wire.size(); ++i) {
    std::string mutated = wire;
    mutated[i] = static_cast<char>(mutated[i] ^ (1 << (i % 8)));
    Slice in(mutated);
    Frame decoded;
    const Status status = DecodeFrame(&in, &decoded);
    EXPECT_TRUE(status.IsCorruption()) << "byte " << i;
  }
}

TEST(WireTest, OversizedBodyLengthRejectedWithoutAllocating) {
  std::string wire;
  PutFixed32(&wire, kMaxFrameBody + 1);
  PutFixed32(&wire, 0);
  wire.append(16, 'x');
  Slice in(wire);
  Frame decoded;
  EXPECT_TRUE(DecodeFrame(&in, &decoded).IsCorruption());
}

TEST(WireTest, MessageListRoundTrip) {
  std::vector<Message> messages(3);
  for (int i = 0; i < 3; ++i) {
    messages[i].topic = "t";
    messages[i].partition = i;
    messages[i].offset = static_cast<uint64_t>(100 + i);
    messages[i].key = "k" + std::to_string(i);
    messages[i].payload = std::string(i * 7, 'p');
    messages[i].publish_time = 1000 + i;
    messages[i].visible_time = 1500 + i;
  }
  std::string encoded;
  PutWireMessageList(&encoded, messages);
  Slice in(encoded);
  std::vector<Message> decoded;
  ASSERT_TRUE(GetWireMessageList(&in, &decoded));
  ASSERT_EQ(decoded.size(), messages.size());
  for (size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(decoded[i].offset, messages[i].offset);
    EXPECT_EQ(decoded[i].key, messages[i].key);
    EXPECT_EQ(decoded[i].payload, messages[i].payload);
    EXPECT_EQ(decoded[i].visible_time, messages[i].visible_time);
  }
}

std::vector<Message> SampleColumnarMessages() {
  // Three (topic, partition) runs with an interleaving that returns to
  // an earlier pair, so grouping must preserve global order rather than
  // coalesce by key.
  std::vector<Message> messages;
  const int partitions[] = {0, 0, 1, 0};
  const char* topics[] = {"alpha", "alpha", "beta", "alpha"};
  for (int i = 0; i < 4; ++i) {
    Message m;
    m.topic = topics[i];
    m.partition = partitions[i];
    m.offset = static_cast<uint64_t>(1000 + i * 3);
    m.key = i == 2 ? "" : "key" + std::to_string(i);
    m.payload = std::string(static_cast<size_t>(i) * 11, 'p');
    m.publish_time = 500000 + i * 7;
    m.visible_time = 500100 + i * 7;
    messages.push_back(std::move(m));
  }
  return messages;
}

TEST(WireTest, ColumnarMessageListRoundTripPreservesOrder) {
  const std::vector<Message> messages = SampleColumnarMessages();
  std::string encoded;
  PutColumnarMessageList(&encoded, messages);

  Slice in(encoded);
  MessageBatch batch;
  ASSERT_TRUE(GetColumnarMessageList(&in, &batch));
  EXPECT_TRUE(in.empty());
  ASSERT_EQ(batch.size(), messages.size());
  for (size_t i = 0; i < messages.size(); ++i) {
    const MessageView& v = batch[i];
    EXPECT_EQ(v.topic.ToString(), messages[i].topic) << i;
    EXPECT_EQ(v.partition, messages[i].partition) << i;
    EXPECT_EQ(v.offset, messages[i].offset) << i;
    EXPECT_EQ(v.key.ToString(), messages[i].key) << i;
    EXPECT_EQ(v.payload.ToString(), messages[i].payload) << i;
    EXPECT_EQ(v.publish_time, messages[i].publish_time) << i;
    EXPECT_EQ(v.visible_time, messages[i].visible_time) << i;
  }
}

TEST(WireTest, ColumnarEveryTruncationFailsTheDecode) {
  std::string encoded;
  PutColumnarMessageList(&encoded, SampleColumnarMessages());
  for (size_t len = 0; len < encoded.size(); ++len) {
    const std::string prefix = encoded.substr(0, len);
    Slice in(prefix);
    MessageBatch batch;
    EXPECT_FALSE(GetColumnarMessageList(&in, &batch))
        << "prefix length " << len;
  }
}

TEST(WireTest, ColumnarBitFlipsNeverEscapeTheBuffer) {
  // No CRC protects this layer (the frame's does); a flipped bit may
  // still decode, but every resulting view must stay inside the input
  // buffer — ASan turns any escape into a hard failure.
  std::string encoded;
  PutColumnarMessageList(&encoded, SampleColumnarMessages());
  for (size_t i = 0; i < encoded.size(); ++i) {
    std::string mutated = encoded;
    mutated[i] = static_cast<char>(mutated[i] ^ (1 << (i % 8)));
    Slice in(mutated);
    MessageBatch batch;
    if (!GetColumnarMessageList(&in, &batch)) continue;
    const char* base = mutated.data();
    const char* end = base + mutated.size();
    for (const MessageView& v : batch.views()) {
      for (const Slice& s : {v.topic, v.key, v.payload}) {
        if (s.empty()) continue;
        EXPECT_GE(s.data(), base) << "byte " << i;
        EXPECT_LE(s.data() + s.size(), end) << "byte " << i;
      }
    }
  }
}

TEST(WireTest, ColumnarColumnLengthMismatchIsRejected) {
  // Hand-crafted group claiming a key column that overruns the input:
  // the length pre-validation must fail the decode before any read.
  std::string enc;
  PutVarint32(&enc, 1);  // ngroups
  PutLengthPrefixedSlice(&enc, "t");
  PutVarint32(&enc, 0);  // partition
  PutVarint32(&enc, 2);  // n
  PutVarint64(&enc, 100);
  PutVarsint64(&enc, 1);  // offsets
  PutVarsint64(&enc, 10);
  PutVarsint64(&enc, 0);  // publish
  PutVarsint64(&enc, 11);
  PutVarsint64(&enc, 0);  // visible
  PutVarint32(&enc, 3);
  PutVarint32(&enc, 1u << 30);  // key lens: second overruns everything.
  enc.append("abcdefgh");
  Slice in(enc);
  MessageBatch batch;
  EXPECT_FALSE(GetColumnarMessageList(&in, &batch));
}

TEST(WireTest, ColumnarHugeRowCountRejectedWithoutAllocating) {
  std::string enc;
  PutVarint32(&enc, 1);  // ngroups
  PutLengthPrefixedSlice(&enc, "t");
  PutVarint32(&enc, 0);           // partition
  PutVarint32(&enc, 0x7fffffff);  // n: absurd for a 20-byte input.
  enc.append(8, 'x');
  Slice in(enc);
  MessageBatch batch;
  EXPECT_FALSE(GetColumnarMessageList(&in, &batch));
}

TEST(WireTest, ColumnarProduceBatchRoundTrip) {
  std::vector<ProduceRecord> records;
  records.push_back({"k1", "payload-one"});
  records.push_back({"", std::string(300, 'z')});
  records.push_back({"k3", ""});
  std::string enc;
  PutColumnarProduceBatch(&enc, "events", records);

  Slice in(enc);
  std::string topic;
  std::vector<ProduceRecord> decoded;
  ASSERT_TRUE(GetColumnarProduceBatch(&in, &topic, &decoded));
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(topic, "events");
  ASSERT_EQ(decoded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i].key, records[i].key);
    EXPECT_EQ(decoded[i].payload, records[i].payload);
  }

  for (size_t len = 0; len + 1 < enc.size(); ++len) {
    const std::string prefix = enc.substr(0, len);
    Slice trunc(prefix);
    std::string t;
    std::vector<ProduceRecord> r;
    EXPECT_FALSE(GetColumnarProduceBatch(&trunc, &t, &r)) << len;
  }
}

TEST(BufferPoolTest, RecyclesBuffersAfterWarmup) {
  BufferPool pool(/*max_idle=*/2);
  {
    BufferRef a = pool.Acquire(128);
    memset(a->data(), 7, a->size());
    EXPECT_GE(a->size(), 128u);
  }
  EXPECT_EQ(pool.misses(), 1u);
  const uint64_t warm_misses = pool.misses();
  for (int i = 0; i < 10; ++i) {
    BufferRef b = pool.Acquire(64);  // Fits the recycled block.
    EXPECT_GE(b->size(), 64u);
  }
  EXPECT_EQ(pool.misses(), warm_misses);  // Steady state: all hits.
  EXPECT_EQ(pool.hits(), 10u);
  EXPECT_GE(pool.bytes(), 128u + 10u * 64u);
}

TEST(BufferPoolTest, OutstandingBuffersSurviveThePool) {
  BufferRef survivor;
  {
    BufferPool pool(2);
    survivor = pool.Acquire(32);
    memset(survivor->data(), 1, survivor->size());
  }
  // The pool is gone; releasing the last ref must free, not return to a
  // destroyed free list.
  memset(survivor->data(), 2, survivor->size());
  survivor.reset();
}

TEST(BusServerTest, UnknownOpcodeReturnsNotSupportedResponse) {
  BusOptions options;
  options.delivery_delay = 0;
  InProcessBus bus(options);
  BusServer server(BusServerOptions{}, &bus);

  Frame request;
  request.correlation_id = 7;
  request.opcode = 99;  // Not a valid OpCode.
  const Frame response = server.HandleRequest(request);
  EXPECT_EQ(response.correlation_id, 7u);
  EXPECT_EQ(response.opcode, 99 | kResponseBit);
  Slice in(response.payload);
  Status remote;
  ASSERT_TRUE(GetStatus(&in, &remote));
  // A CRC-valid frame with an unimplemented opcode is a typed protocol
  // mismatch (api::Client::EnsureStream relies on this to distinguish
  // "broker has no metadata service" from wire corruption).
  EXPECT_TRUE(remote.IsNotSupported());
}

TEST(BusServerTest, MalformedPayloadReturnsCorruptionResponse) {
  BusOptions options;
  options.delivery_delay = 0;
  InProcessBus bus(options);
  BusServer server(BusServerOptions{}, &bus);

  Frame request;
  request.correlation_id = 8;
  request.opcode = static_cast<uint8_t>(OpCode::kCreateTopic);
  request.payload = "\xff\xff\xff";  // Not a length-prefixed topic.
  const Frame response = server.HandleRequest(request);
  Slice in(response.payload);
  Status remote;
  ASSERT_TRUE(GetStatus(&in, &remote));
  EXPECT_TRUE(remote.IsCorruption());
}

TEST(BusServerTest, GarbageBytesOverTheSocketCloseTheConnection) {
  BusOptions options;
  options.delivery_delay = 0;
  InProcessBus bus(options);
  BusServer server(BusServerOptions{}, &bus);
  ASSERT_TRUE(server.Start().ok());

  auto sock_or = Socket::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(sock_or.ok());
  Socket sock = std::move(sock_or).value();
  // A valid-looking header whose body fails the checksum: the server
  // must drop the connection (it cannot trust the framing) and stay up.
  std::string junk;
  PutFixed32(&junk, 8);
  PutFixed32(&junk, 0xdeadbeef);
  junk.append(8, 'z');
  ASSERT_TRUE(sock.SendAll(junk.data(), junk.size()).ok());
  char byte;
  EXPECT_FALSE(sock.RecvAll(&byte, 1).ok());  // Closed, no response.

  // The server still serves fresh connections.
  RemoteBusOptions remote_options;
  remote_options.address = server.address();
  RemoteBus remote(remote_options);
  ASSERT_TRUE(remote.Connect().ok());
  EXPECT_TRUE(remote.CreateTopic("after-garbage", 1).ok());
  server.Stop();
}

class RemoteBusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    BusOptions options;
    options.delivery_delay = 0;
    bus_ = std::make_unique<InProcessBus>(options);
    server_ = std::make_unique<BusServer>(BusServerOptions{}, bus_.get());
    ASSERT_TRUE(server_->Start().ok());
    RemoteBusOptions remote_options;
    remote_options.address = server_->address();
    remote_ = std::make_unique<RemoteBus>(remote_options);
    ASSERT_TRUE(remote_->Connect().ok());
  }

  void TearDown() override {
    remote_.reset();
    if (server_ != nullptr) server_->Stop();
  }

  std::unique_ptr<InProcessBus> bus_;
  std::unique_ptr<BusServer> server_;
  std::unique_ptr<RemoteBus> remote_;
};

TEST_F(RemoteBusTest, TopicAdministrationMirrorsTheHostedBus) {
  ASSERT_TRUE(remote_->CreateTopic("t", 4).ok());
  EXPECT_TRUE(remote_->CreateTopic("t", 4).IsAlreadyExists());
  EXPECT_EQ(remote_->NumPartitions("t").value(), 4);
  EXPECT_EQ(remote_->PartitionsOf("t").size(), 4u);
  EXPECT_EQ(bus_->NumPartitions("t").value(), 4);  // Same broker.
  EXPECT_TRUE(remote_->NumPartitions("nope").status().IsNotFound());
  ASSERT_TRUE(remote_->DeleteTopic("t").ok());
  EXPECT_TRUE(remote_->NumPartitions("t").status().IsNotFound());
}

TEST_F(RemoteBusTest, ProducePollCommitSeekAcrossTheWire) {
  ASSERT_TRUE(remote_->CreateTopic("t", 1).ok());
  ASSERT_TRUE(remote_->Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(remote_->Poll("c", 10, &out).ok());  // Assignment.

  for (int i = 0; i < 5; ++i) {
    auto offset = remote_->ProduceToPartition("t", 0, "k",
                                              "m" + std::to_string(i));
    ASSERT_TRUE(offset.ok());
    EXPECT_EQ(offset.value(), static_cast<uint64_t>(i));
  }
  ASSERT_TRUE(remote_->Poll("c", 10, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].payload, "m0");
  EXPECT_EQ(out[4].offset, 4u);

  ASSERT_TRUE(remote_->Commit("c", {"t", 0}, 5).ok());
  ASSERT_TRUE(remote_->Seek("c", {"t", 0}, 2).ok());
  ASSERT_TRUE(remote_->Poll("c", 10, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].payload, "m2");
  EXPECT_EQ(remote_->EndOffset({"t", 0}).value(), 5u);
  EXPECT_EQ(remote_->BaseOffset({"t", 0}).value(), 0u);

  ASSERT_TRUE(remote_->Fetch({"t", 0}, 1, 2, &out).ok());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].offset, 1u);
}

TEST_F(RemoteBusTest, BlockingPollParksServerSideAndWakesOnArrival) {
  ASSERT_TRUE(remote_->CreateTopic("t", 1).ok());
  ASSERT_TRUE(remote_->Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(remote_->Poll("c", 10, &out).ok());  // Assignment.

  // Producer fires from another thread over the same RemoteBus (its own
  // control connection) while the consumer parks server-side.
  std::thread producer([this] {
    MonotonicClock::Default()->SleepMicros(30 * kMicrosPerMilli);
    ASSERT_TRUE(remote_->ProduceToPartition("t", 0, "k", "wake").ok());
  });
  const Micros start = MonotonicClock::Default()->NowMicros();
  ASSERT_TRUE(remote_->Poll("c", 10, &out, 5 * kMicrosPerSecond).ok());
  const Micros elapsed = MonotonicClock::Default()->NowMicros() - start;
  producer.join();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, "wake");
  EXPECT_LT(elapsed, 2 * kMicrosPerSecond);
}

TEST_F(RemoteBusTest, WakeConsumerInterruptsAParkedRemotePoll) {
  ASSERT_TRUE(remote_->CreateTopic("t", 1).ok());
  ASSERT_TRUE(remote_->Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(remote_->Poll("c", 10, &out).ok());

  std::thread waker([this] {
    MonotonicClock::Default()->SleepMicros(30 * kMicrosPerMilli);
    ASSERT_TRUE(remote_->WakeConsumer("c").ok());
  });
  const Micros start = MonotonicClock::Default()->NowMicros();
  ASSERT_TRUE(remote_->Poll("c", 10, &out, 5 * kMicrosPerSecond).ok());
  const Micros elapsed = MonotonicClock::Default()->NowMicros() - start;
  waker.join();
  EXPECT_TRUE(out.empty());
  EXPECT_LT(elapsed, 2 * kMicrosPerSecond);
}

TEST_F(RemoteBusTest, RebalanceCallbacksStreamToTheRemoteClient) {
  ASSERT_TRUE(remote_->CreateTopic("t", 4).ok());
  std::atomic<int> assigned_total{0}, revoked_total{0};
  RebalanceListener listener;
  listener.on_assigned = [&](const std::vector<TopicPartition>& a) {
    assigned_total += static_cast<int>(a.size());
  };
  listener.on_revoked = [&](const std::vector<TopicPartition>& r) {
    revoked_total += static_cast<int>(r.size());
  };
  ASSERT_TRUE(
      remote_->Subscribe("c1", "g", {"t"}, "", nullptr, listener).ok());
  std::vector<Message> out;
  ASSERT_TRUE(remote_->Poll("c1", 10, &out).ok());
  EXPECT_EQ(assigned_total.load(), 4);  // Sole member owns everything.
  EXPECT_EQ(remote_->AssignmentOf("c1").size(), 4u);

  // A second member (directly on the hosted bus) takes over partitions:
  // the remote consumer sees the revocations on its next poll.
  ASSERT_TRUE(bus_->Subscribe("c2", "g", {"t"}, "", nullptr, {}).ok());
  ASSERT_TRUE(remote_->Poll("c1", 10, &out).ok());
  EXPECT_EQ(revoked_total.load(), 2);
  EXPECT_GT(remote_->rebalance_count(), 0u);
}

TEST_F(RemoteBusTest, ColumnarPollIsZeroCopyAndPoolStabilizes) {
  ASSERT_TRUE(remote_->CreateTopic("t", 1).ok());
  ASSERT_TRUE(remote_->Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  MessageBatch batch;
  ASSERT_TRUE(remote_->PollBatch("c", 10, &batch).ok());  // Assignment.

  for (int round = 0; round < 8; ++round) {
    std::vector<ProduceRecord> records;
    for (int i = 0; i < 4; ++i) {
      records.push_back({"k", "r" + std::to_string(round) + "-m" +
                                  std::to_string(i)});
    }
    ASSERT_TRUE(remote_->ProduceBatch("t", std::move(records)).ok());
    ASSERT_TRUE(
        remote_->PollBatch("c", 10, &batch, kMicrosPerSecond).ok());
    ASSERT_EQ(batch.size(), 4u);
    EXPECT_TRUE(batch.zero_copy());  // Views into the pooled buffer.
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(batch[i].topic.ToString(), "t");
      EXPECT_EQ(batch[i].payload.ToString(),
                "r" + std::to_string(round) + "-m" + std::to_string(i));
      EXPECT_EQ(batch[i].offset,
                static_cast<uint64_t>(round * 4 + i));
    }
    if (round == 3) {
      // Warmed up: later rounds must recycle, not allocate.
      const uint64_t misses = remote_->pool_misses();
      for (int r2 = 0; r2 < 2; ++r2) {
        ASSERT_TRUE(
            remote_->PollBatch("c", 10, &batch, /*max_wait=*/0).ok());
      }
      EXPECT_EQ(remote_->pool_misses(), misses);
    }
  }
  EXPECT_GT(remote_->columnar_batches(), 0u);
  EXPECT_GT(server_->columnar_batches(), 0u);
  EXPECT_TRUE(remote_->columnar_enabled());
  EXPECT_GT(remote_->decode_bytes(), 0u);
}

TEST_F(RemoteBusTest, PollAdapterStillReturnsOwnedMessages) {
  // The row-shaped Poll() now routes through PollBatch and copies out;
  // callers that keep vectors of Messages stay correct.
  ASSERT_TRUE(remote_->CreateTopic("t", 1).ok());
  ASSERT_TRUE(remote_->Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(remote_->Poll("c", 10, &out).ok());
  ASSERT_TRUE(remote_->ProduceToPartition("t", 0, "key", "value").ok());
  ASSERT_TRUE(remote_->Poll("c", 10, &out, kMicrosPerSecond).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, "key");
  EXPECT_EQ(out[0].payload, "value");
  EXPECT_EQ(out[0].topic, "t");
}

TEST(RemoteBusFallbackTest, OldServerWithoutColumnarDowngradesOnce) {
  BusOptions options;
  options.delivery_delay = 0;
  InProcessBus bus(options);
  BusServerOptions server_options;
  server_options.enable_columnar = false;  // Simulates a pre-PR-7 peer.
  BusServer server(server_options, &bus);
  ASSERT_TRUE(server.Start().ok());

  // Direct check of the negotiation seam: the columnar opcodes answer
  // exactly like an unknown opcode on an old server.
  Frame probe;
  probe.correlation_id = 9;
  probe.opcode = static_cast<uint8_t>(OpCode::kPollColumnar);
  const Frame probe_response = server.HandleRequest(probe);
  Slice probe_in(probe_response.payload);
  Status probe_status;
  ASSERT_TRUE(GetStatus(&probe_in, &probe_status));
  EXPECT_TRUE(probe_status.IsNotSupported());

  RemoteBusOptions remote_options;
  remote_options.address = server.address();
  RemoteBus remote(remote_options);
  ASSERT_TRUE(remote.Connect().ok());
  ASSERT_TRUE(remote.CreateTopic("t", 1).ok());
  ASSERT_TRUE(remote.Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  MessageBatch batch;
  ASSERT_TRUE(remote.PollBatch("c", 10, &batch).ok());  // Assignment.

  // Both columnar-first paths must fall back to the row forms and
  // still deliver; afterwards the client remembers the downgrade.
  std::vector<ProduceRecord> records;
  records.push_back({"k0", "v0"});
  records.push_back({"k1", "v1"});
  ASSERT_TRUE(remote.ProduceBatch("t", std::move(records)).ok());
  ASSERT_TRUE(remote.PollBatch("c", 10, &batch, kMicrosPerSecond).ok());
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].payload.ToString(), "v0");
  EXPECT_EQ(batch[1].payload.ToString(), "v1");
  EXPECT_TRUE(batch.zero_copy());  // Row decode is still pooled.
  EXPECT_FALSE(remote.columnar_enabled());
  EXPECT_EQ(remote.columnar_batches(), 0u);
  EXPECT_EQ(server.columnar_batches(), 0u);

  // Downgrade is sticky: subsequent batches go straight to row forms.
  std::vector<ProduceRecord> more;
  more.push_back({"k2", "v2"});
  ASSERT_TRUE(remote.ProduceBatch("t", std::move(more)).ok());
  ASSERT_TRUE(remote.PollBatch("c", 10, &batch, kMicrosPerSecond).ok());
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].payload.ToString(), "v2");
  server.Stop();
}

TEST_F(RemoteBusTest, TraceTrailerCrossesTheWireToTheHostedBroker) {
  trace::Tracer* tracer = trace::Tracer::Global();
  tracer->ResetForTest();
  trace::TracerOptions trace_options;
  trace_options.sample_every = 1;
  tracer->Enable(trace_options);

  ASSERT_TRUE(remote_->CreateTopic("t", 1).ok());
  const trace::TraceContext ctx = tracer->Mint();
  ASSERT_TRUE(ctx.sampled());
  {
    // The produce path reads the ambient context (as the front end's
    // drain loop does) and rides it across as a frame trailer.
    trace::ScopedTraceContext scope(ctx);
    std::vector<ProduceRecord> records;
    records.push_back({"k", "v"});
    ASSERT_TRUE(remote_->ProduceBatch("t", std::move(records)).ok());
  }
  EXPECT_TRUE(remote_->trace_negotiated());

  // The hosted bus (the "server process" of this loopback pair)
  // recorded its append under the wire-carried context: same trace,
  // parented directly under ctx.span_id.
  tracer->Drain();
  bool found = false;
  for (const auto& span : tracer->CollectedSpans()) {
    if (span.stage != trace::Stage::kBrokerAppend) continue;
    EXPECT_EQ(span.trace_hi, ctx.trace_hi);
    EXPECT_EQ(span.trace_lo, ctx.trace_lo);
    EXPECT_EQ(span.parent_id, ctx.span_id);
    found = true;
  }
  EXPECT_TRUE(found);
  tracer->ResetForTest();
}

TEST(RemoteBusFallbackTest, OldServerWithoutTraceDowngradesToUntraced) {
  trace::Tracer* tracer = trace::Tracer::Global();
  tracer->ResetForTest();
  trace::TracerOptions trace_options;
  trace_options.sample_every = 1;
  tracer->Enable(trace_options);

  BusOptions options;
  options.delivery_delay = 0;
  InProcessBus bus(options);
  BusServerOptions server_options;
  server_options.enable_trace = false;  // Simulates a pre-trace peer.
  BusServer server(server_options, &bus);
  ASSERT_TRUE(server.Start().ok());

  RemoteBusOptions remote_options;
  remote_options.address = server.address();
  RemoteBus remote(remote_options);
  ASSERT_TRUE(remote.Connect().ok());
  ASSERT_TRUE(remote.CreateTopic("t", 1).ok());

  const trace::TraceContext ctx = tracer->Mint();
  ASSERT_TRUE(ctx.sampled());
  {
    trace::ScopedTraceContext scope(ctx);
    std::vector<ProduceRecord> records;
    records.push_back({"k", "v"});
    ASSERT_TRUE(remote.ProduceBatch("t", std::move(records)).ok());
  }
  // kTraceHello answered NotSupported; the downgrade is sticky and
  // delivery is unaffected — the append just has no trace context.
  EXPECT_FALSE(remote.trace_negotiated());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Fetch({"t", 0}, 0, 10, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, "v");

  tracer->Drain();
  for (const auto& span : tracer->CollectedSpans()) {
    EXPECT_NE(span.parent_id, ctx.span_id);  // Nothing linked under it.
  }
  server.Stop();
  tracer->ResetForTest();
}

TEST_F(RemoteBusTest, ServerDeathSurfacesUnavailable) {
  ASSERT_TRUE(remote_->CreateTopic("t", 1).ok());
  server_->Stop();
  server_.reset();

  EXPECT_TRUE(remote_->CreateTopic("x", 1).IsUnavailable());
  EXPECT_TRUE(remote_->Produce("t", "k", "v").status().IsUnavailable());
  std::vector<Message> out;
  EXPECT_TRUE(remote_->Poll("c", 10, &out, kMicrosPerSecond)
                  .IsUnavailable());
}

TEST(RemoteBusBackoffTest, DeadBrokerIsNotHammeredByRetryingCallers) {
  // Grab a port with nothing listening on it.
  auto listener_or = ListenSocket::Listen("127.0.0.1", 0);
  ASSERT_TRUE(listener_or.ok());
  const int dead_port = listener_or.value().port();
  listener_or.value().Close();

  SimulatedClock clock;  // Backoff windows never elapse on their own.
  RemoteBusOptions options;
  options.address = "127.0.0.1:" + std::to_string(dead_port);
  options.clock = &clock;
  RemoteBus remote(options);

  // First call dials and fails; the next twenty — the shape of a poll
  // loop retrying every few milliseconds — must fail fast inside the
  // backoff window without touching the network again.
  EXPECT_TRUE(remote.Produce("t", "k", "v").status().IsUnavailable());
  EXPECT_EQ(remote.dial_attempts(), 1u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(remote.Produce("t", "k", "v").status().IsUnavailable());
  }
  EXPECT_EQ(remote.dial_attempts(), 1u);

  // Once the (capped, jittered) window elapses, exactly one new dial
  // goes out per window.
  clock.Advance(options.reconnect_backoff_max * 2);
  EXPECT_TRUE(remote.Produce("t", "k", "v").status().IsUnavailable());
  EXPECT_EQ(remote.dial_attempts(), 2u);
  EXPECT_TRUE(remote.Produce("t", "k", "v").status().IsUnavailable());
  EXPECT_EQ(remote.dial_attempts(), 2u);

  // An explicit Connect is user-initiated and skips the window.
  EXPECT_FALSE(remote.Connect().ok());
  EXPECT_EQ(remote.dial_attempts(), 3u);

  // Per-consumer poll connections back off independently of control.
  std::vector<Message> out;
  EXPECT_TRUE(remote.Poll("c", 4, &out).IsUnavailable());
  EXPECT_EQ(remote.dial_attempts(), 4u);
  EXPECT_TRUE(remote.Poll("c", 4, &out).IsUnavailable());
  EXPECT_EQ(remote.dial_attempts(), 4u);
}

// ----- Subscription opcodes (kSubCreate/kSubFetch/kSubCancel) --------

ops::SubFetchReply SampleSubFetchReply() {
  ops::SubFetchReply reply;
  reply.dropped_total = 7;
  reply.lag = 3;
  for (int i = 0; i < 3; ++i) {
    ops::SubRecord record;
    record.seq = static_cast<uint64_t>(10 + i);
    record.timestamp = 1000 + i;
    record.fields.emplace_back("cardId",
                               reservoir::FieldValue(std::string("c1")));
    record.fields.emplace_back("amount", reservoir::FieldValue(12.5 + i));
    record.fields.emplace_back("hits", reservoir::FieldValue(int64_t{4}));
    record.fields.emplace_back("flag", reservoir::FieldValue(true));
    reply.records.push_back(std::move(record));
  }
  return reply;
}

TEST(SubWireTest, AllMessagesRoundTrip) {
  ops::SubCreateRequest create;
  create.statement = "SUBSCRIBE SELECT * FROM payments WHERE amount > 1";
  std::string wire;
  ops::EncodeSubCreateRequest(create, &wire);
  ops::SubCreateRequest create2;
  ASSERT_TRUE(ops::DecodeSubCreateRequest(Slice(wire), &create2).ok());
  EXPECT_EQ(create2.statement, create.statement);

  ops::SubCreateReply created;
  created.sub_id = 0xfeedface;
  wire.clear();
  ops::EncodeSubCreateReply(created, &wire);
  ops::SubCreateReply created2;
  ASSERT_TRUE(ops::DecodeSubCreateReply(Slice(wire), &created2).ok());
  EXPECT_EQ(created2.sub_id, created.sub_id);

  ops::SubFetchRequest fetch;
  fetch.sub_id = 42;
  fetch.acked_seq = 17;
  fetch.max_records = 128;
  fetch.max_wait_us = kMicrosPerSecond;
  wire.clear();
  ops::EncodeSubFetchRequest(fetch, &wire);
  ops::SubFetchRequest fetch2;
  ASSERT_TRUE(ops::DecodeSubFetchRequest(Slice(wire), &fetch2).ok());
  EXPECT_EQ(fetch2.sub_id, fetch.sub_id);
  EXPECT_EQ(fetch2.acked_seq, fetch.acked_seq);
  EXPECT_EQ(fetch2.max_records, fetch.max_records);
  EXPECT_EQ(fetch2.max_wait_us, fetch.max_wait_us);

  const ops::SubFetchReply reply = SampleSubFetchReply();
  wire.clear();
  ops::EncodeSubFetchReply(reply, &wire);
  ops::SubFetchReply reply2;
  ASSERT_TRUE(ops::DecodeSubFetchReply(Slice(wire), &reply2).ok());
  EXPECT_EQ(reply2.dropped_total, reply.dropped_total);
  EXPECT_EQ(reply2.lag, reply.lag);
  ASSERT_EQ(reply2.records.size(), reply.records.size());
  for (size_t i = 0; i < reply.records.size(); ++i) {
    EXPECT_EQ(reply2.records[i].seq, reply.records[i].seq);
    EXPECT_EQ(reply2.records[i].timestamp, reply.records[i].timestamp);
    ASSERT_EQ(reply2.records[i].fields.size(),
              reply.records[i].fields.size());
    for (size_t j = 0; j < reply.records[i].fields.size(); ++j) {
      EXPECT_EQ(reply2.records[i].fields[j].first,
                reply.records[i].fields[j].first);
      EXPECT_EQ(reply2.records[i].fields[j].second.ToString(),
                reply.records[i].fields[j].second.ToString());
    }
  }

  ops::SubCancelRequest cancel;
  cancel.sub_id = 99;
  wire.clear();
  ops::EncodeSubCancelRequest(cancel, &wire);
  ops::SubCancelRequest cancel2;
  ASSERT_TRUE(ops::DecodeSubCancelRequest(Slice(wire), &cancel2).ok());
  EXPECT_EQ(cancel2.sub_id, cancel.sub_id);
}

TEST(SubWireTest, EveryTruncationIsCorruptionNeverACrash) {
  std::string create_wire, fetch_wire, reply_wire;
  ops::SubCreateRequest create;
  create.statement = "SUBSCRIBE SELECT * FROM payments";
  ops::EncodeSubCreateRequest(create, &create_wire);
  ops::SubFetchRequest fetch;
  fetch.sub_id = 42;
  fetch.acked_seq = 17;
  ops::EncodeSubFetchRequest(fetch, &fetch_wire);
  ops::EncodeSubFetchReply(SampleSubFetchReply(), &reply_wire);

  for (size_t len = 0; len < create_wire.size(); ++len) {
    ops::SubCreateRequest out;
    EXPECT_TRUE(ops::DecodeSubCreateRequest(
                    Slice(create_wire.substr(0, len)), &out)
                    .IsCorruption())
        << "create prefix " << len;
  }
  for (size_t len = 0; len < fetch_wire.size(); ++len) {
    ops::SubFetchRequest out;
    EXPECT_TRUE(
        ops::DecodeSubFetchRequest(Slice(fetch_wire.substr(0, len)), &out)
            .IsCorruption())
        << "fetch prefix " << len;
  }
  for (size_t len = 0; len < reply_wire.size(); ++len) {
    ops::SubFetchReply out;
    EXPECT_TRUE(
        ops::DecodeSubFetchReply(Slice(reply_wire.substr(0, len)), &out)
            .IsCorruption())
        << "reply prefix " << len;
  }
}

TEST(SubWireTest, BitFlipsYieldTypedStatusesNeverACrash) {
  // The frame layer owns integrity (CRC); the payload codecs only
  // guarantee memory safety and typed errors under mutation. Flipped
  // counts must not trigger huge allocations either — the codecs bound
  // allocations by the remaining input.
  std::string wire;
  ops::EncodeSubFetchReply(SampleSubFetchReply(), &wire);
  for (size_t i = 0; i < wire.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = wire;
      mutated[i] = static_cast<char>(mutated[i] ^ (1 << bit));
      ops::SubFetchReply out;
      const Status status = ops::DecodeSubFetchReply(Slice(mutated), &out);
      EXPECT_TRUE(status.ok() || status.IsCorruption())
          << "byte " << i << " bit " << bit << ": " << status.ToString();
    }
  }
}

TEST(BusServerTest, SubscriptionOpcodesOnAPlainServerAreNotSupported) {
  // A BusServer without the broker's extension handler — the shape of a
  // pre-subscription peer — answers the new opcodes exactly like any
  // unknown opcode: typed NotSupported, never Corruption or a crash.
  BusOptions options;
  options.delivery_delay = 0;
  InProcessBus bus(options);
  BusServer server(BusServerOptions(), &bus);
  ASSERT_TRUE(server.Start().ok());
  for (const OpCode opcode :
       {OpCode::kSubCreate, OpCode::kSubFetch, OpCode::kSubCancel}) {
    Frame frame;
    frame.correlation_id = 77;
    frame.opcode = static_cast<uint8_t>(opcode);
    ops::SubCreateRequest request;
    request.statement = "SUBSCRIBE SELECT * FROM payments";
    ops::EncodeSubCreateRequest(request, &frame.payload);
    const Frame response = server.HandleRequest(frame);
    Slice in(response.payload);
    Status status;
    ASSERT_TRUE(GetStatus(&in, &status));
    EXPECT_TRUE(status.IsNotSupported())
        << "opcode " << static_cast<int>(opcode) << ": "
        << status.ToString();
  }
  server.Stop();
}

}  // namespace
}  // namespace railgun::msg::remote

namespace railgun::api {
namespace {

constexpr const char* kPaymentsDdl =
    "CREATE STREAM payments (cardId STRING, merchantId STRING, "
    "amount DOUBLE) PARTITION BY cardId, merchantId PARTITIONS 2";
constexpr const char* kCardMetric =
    "ADD METRIC SELECT sum(amount), count(*) FROM payments "
    "GROUP BY cardId OVER sliding 5 minutes";

// One process playing both roles over a real loopback socket: the
// serving side (a meta::Broker with one colocated processing node —
// cluster + BusServer + metadata/DDL service) and a remote client.
struct RemoteHarness {
  explicit RemoteHarness(const std::string& name) {
    meta::BrokerOptions options;
    options.cluster.num_nodes = 1;
    options.cluster.node.num_processor_units = 2;
    options.cluster.base_dir = "/tmp/railgun-remote-test-" + name;
    options.cluster.bus.delivery_delay = 0;
    broker = std::make_unique<meta::Broker>(options);
  }

  Status Start() { return broker->Start(); }
  void Stop() { broker->Stop(); }
  std::string address() const { return broker->address(); }

  std::unique_ptr<meta::Broker> broker;
};

TEST(RemoteClientTest, QuickstartFlowOverTheLoopbackTransport) {
  RemoteHarness harness("quickstart");
  ASSERT_TRUE(harness.Start().ok());

  ClientOptions options;
  options.remote_address = harness.address();
  Client client(options);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());
  EXPECT_TRUE(client.CreateStream(kPaymentsDdl).IsAlreadyExists());
  ASSERT_TRUE(client.Query(kCardMetric).ok());

  EventResult first = client.SubmitSync(
      "payments", Row()
                      .At(1 * kMicrosPerMinute)
                      .Set("cardId", "card1")
                      .Set("merchantId", "m1")
                      .Set("amount", 10.0));
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  ASSERT_NE(first.Find("count(*)", "card1"), nullptr);
  EXPECT_DOUBLE_EQ(first.Find("count(*)", "card1")->value.ToNumber(), 1.0);
  EXPECT_DOUBLE_EQ(first.Find("sum(amount)", "card1")->value.ToNumber(),
                   10.0);

  EventResult second = client.SubmitSync(
      "payments", Row()
                      .At(2 * kMicrosPerMinute)
                      .Set("cardId", "card1")
                      .Set("merchantId", "m2")
                      .Set("amount", 4.5));
  ASSERT_TRUE(second.ok()) << second.status.ToString();
  EXPECT_DOUBLE_EQ(second.Find("count(*)", "card1")->value.ToNumber(), 2.0);
  EXPECT_DOUBLE_EQ(second.Find("sum(amount)", "card1")->value.ToNumber(),
                   14.5);

  // Remote mode has no local cluster to mutate, but topology queries
  // answer from the broker's metadata view (one broker-local node).
  EXPECT_TRUE(client.admin().AddNode().status().IsUnavailable());
  EXPECT_EQ(client.admin().num_nodes(), 1);
  EXPECT_TRUE(client.admin().NodeAlive(0));

  client.Stop();
  harness.Stop();
}

TEST(RemoteClientTest, BatchSubmissionOverTheWire) {
  RemoteHarness harness("batch");
  ASSERT_TRUE(harness.Start().ok());

  ClientOptions options;
  options.remote_address = harness.address();
  Client client(options);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());
  ASSERT_TRUE(client.Query(kCardMetric).ok());

  std::vector<Row> rows;
  for (int i = 1; i <= 8; ++i) {
    rows.push_back(Row()
                       .At(i * kMicrosPerSecond)
                       .Set("cardId", "cardB")
                       .Set("merchantId", "m" + std::to_string(i % 3))
                       .Set("amount", 2.0));
  }
  std::vector<ResultFuture> futures = client.SubmitBatch("payments", rows);
  ASSERT_EQ(futures.size(), rows.size());
  double max_count = 0;
  for (auto& future : futures) {
    EventResult result = future.Get();
    ASSERT_TRUE(result.ok()) << result.status.ToString();
    const MetricValue* count = result.Find("count(*)", "cardB");
    ASSERT_NE(count, nullptr);
    max_count = std::max(max_count, count->value.ToNumber());
  }
  EXPECT_DOUBLE_EQ(max_count, 8.0);  // Per-key order preserved end to end.

  client.Stop();
  harness.Stop();
}

TEST(RemoteClientTest, ReattachedClientCanSubmitToExistingStream) {
  RemoteHarness harness("reattach");
  ASSERT_TRUE(harness.Start().ok());

  ClientOptions options;
  options.remote_address = harness.address();
  {
    Client first(options);
    ASSERT_TRUE(first.Start().ok());
    ASSERT_TRUE(first.CreateStream(kPaymentsDdl).ok());
    ASSERT_TRUE(first.Query(kCardMetric).ok());
    first.Stop();
  }

  // A new client attaching to the same cluster re-declares the stream:
  // the cluster answers AlreadyExists, but the client must still learn
  // the schema and routing so submission works.
  Client second(options);
  ASSERT_TRUE(second.Start().ok());
  EXPECT_TRUE(second.CreateStream(kPaymentsDdl).IsAlreadyExists());
  EXPECT_TRUE(second.Query(kCardMetric).IsAlreadyExists());
  EventResult result = second.SubmitSync(
      "payments", Row()
                      .At(3 * kMicrosPerMinute)
                      .Set("cardId", "cardR")
                      .Set("merchantId", "m1")
                      .Set("amount", 7.0));
  ASSERT_TRUE(result.ok()) << result.status.ToString();
  ASSERT_NE(result.Find("sum(amount)", "cardR"), nullptr);
  EXPECT_DOUBLE_EQ(result.Find("sum(amount)", "cardR")->value.ToNumber(),
                   7.0);
  second.Stop();
  harness.Stop();
}

TEST(RemoteClientTest, ServerDeathTimesOutPendingRequestsCleanly) {
  auto harness = std::make_unique<RemoteHarness>("kill");
  ASSERT_TRUE(harness->Start().ok());

  ClientOptions options;
  options.remote_address = harness->address();
  options.request_timeout = kMicrosPerSecond;
  Client client(options);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());
  ASSERT_TRUE(client.Query(kCardMetric).ok());
  ASSERT_TRUE(client
                  .SubmitSync("payments", Row()
                                              .At(kMicrosPerSecond)
                                              .Set("cardId", "c1")
                                              .Set("merchantId", "m1")
                                              .Set("amount", 1.0))
                  .ok());

  // Kill the whole serving side. In-flight and subsequent requests must
  // complete with Unavailable within the request timeout — no hangs, no
  // crashes.
  harness->Stop();
  harness.reset();

  const Micros start = MonotonicClock::Default()->NowMicros();
  EventResult dead = client.SubmitSync("payments",
                                       Row()
                                           .At(2 * kMicrosPerSecond)
                                           .Set("cardId", "c1")
                                           .Set("merchantId", "m1")
                                           .Set("amount", 1.0));
  const Micros elapsed = MonotonicClock::Default()->NowMicros() - start;
  EXPECT_TRUE(dead.status.IsUnavailable()) << dead.status.ToString();
  EXPECT_LT(elapsed, 10 * kMicrosPerSecond);

  // DDL against a dead server reports the failure, typed.
  EXPECT_FALSE(client.Query("ADD METRIC SELECT avg(amount) FROM payments "
                            "GROUP BY merchantId OVER sliding 5 minutes")
                   .ok());
  client.Stop();
}

TEST(RemoteClientTest, TracedSubmitYieldsOneParentLinkedTrace) {
  trace::Tracer* tracer = trace::Tracer::Global();
  tracer->ResetForTest();
  trace::TracerOptions trace_options;
  trace_options.sample_every = 1;  // Sample everything.
  tracer->Enable(trace_options);

  RemoteHarness harness("trace");
  ASSERT_TRUE(harness.Start().ok());
  ClientOptions options;
  options.remote_address = harness.address();
  Client client(options);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());
  ASSERT_TRUE(client.Query(kCardMetric).ok());

  EventResult result = client.SubmitSync(
      "payments", Row()
                      .At(1 * kMicrosPerMinute)
                      .Set("cardId", "cardT")
                      .Set("merchantId", "m1")
                      .Set("amount", 3.0));
  ASSERT_TRUE(result.ok()) << result.status.ToString();

  // The tail spans (frontend.complete, the client.submit root) record
  // moments after the future fires; poll until the capture quiesces.
  std::vector<trace::Span> spans;
  const Micros deadline =
      MonotonicClock::Default()->NowMicros() + 5 * kMicrosPerSecond;
  std::set<trace::Stage> stages;
  while (MonotonicClock::Default()->NowMicros() < deadline) {
    tracer->Drain();
    spans = tracer->CollectedSpans();
    stages.clear();
    for (const auto& span : spans) stages.insert(span.stage);
    if (stages.count(trace::Stage::kClientSubmit) > 0 &&
        stages.count(trace::Stage::kFrontendComplete) > 0 &&
        stages.size() >= 6) {
      break;
    }
    MonotonicClock::Default()->SleepMicros(20 * kMicrosPerMilli);
  }

  // One submission, one trace, covering client, front end, broker, unit
  // and reply layers: at least six stages, every span on the same
  // 128-bit trace id, every non-root span parented at another recorded
  // span, exactly one root.
  ASSERT_GE(stages.size(), 6u);
  EXPECT_EQ(stages.count(trace::Stage::kClientSubmit), 1u);
  EXPECT_EQ(stages.count(trace::Stage::kFrontendEnqueue), 1u);
  EXPECT_EQ(stages.count(trace::Stage::kBrokerAppend), 1u);
  EXPECT_EQ(stages.count(trace::Stage::kUnitProcess), 1u);
  EXPECT_EQ(stages.count(trace::Stage::kReplyPublish), 1u);
  EXPECT_EQ(stages.count(trace::Stage::kFrontendComplete), 1u);
  ASSERT_FALSE(spans.empty());
  std::set<uint64_t> span_ids;
  int roots = 0;
  for (const auto& span : spans) {
    EXPECT_EQ(span.trace_hi, spans[0].trace_hi);
    EXPECT_EQ(span.trace_lo, spans[0].trace_lo);
    span_ids.insert(span.span_id);
    if (span.parent_id == 0) ++roots;
  }
  EXPECT_EQ(roots, 1);
  for (const auto& span : spans) {
    if (span.parent_id == 0) {
      EXPECT_EQ(span.stage, trace::Stage::kClientSubmit);
      continue;
    }
    EXPECT_EQ(span_ids.count(span.parent_id), 1u)
        << "orphaned span " << trace::StageName(span.stage);
  }

  // The capture exports as loadable Chrome-trace JSON.
  const std::string json = tracer->ExportChromeJson();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_NE(json.find("\"name\":\"client.submit\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit.window_apply\""), std::string::npos);

  client.Stop();
  harness.Stop();
  tracer->ResetForTest();
}

TEST(RemoteClientTest, PipelineRoutesAndSubscriptionTailsEndToEnd) {
  // The PR's acceptance path: a remote client registers an operator
  // pipeline over the wire, the broker-side units materialize the
  // derived events into the target stream, and a remote SUBSCRIBE
  // receives them live over the new opcodes.
  RemoteHarness harness("ops-e2e");
  ASSERT_TRUE(harness.Start().ok());
  ClientOptions options;
  options.remote_address = harness.address();
  Client client(options);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());
  ASSERT_TRUE(client
                  .CreateStream("CREATE STREAM alerts (cardId STRING, "
                                "amount DOUBLE) PARTITION BY cardId "
                                "PARTITIONS 2")
                  .ok());
  const Status added = client.Execute(
      "ADD PIPELINE big ON payments | filter(amount > 100) | by(cardId) "
      "| threshold(amount, 150) | route_to_stream(alerts)");
  ASSERT_TRUE(added.ok()) << added.ToString();
  std::vector<query::PipelineSpec> pipelines = client.ListPipelines();
  ASSERT_EQ(pipelines.size(), 1u);
  EXPECT_EQ(pipelines[0].name, "big");

  auto sub = client.Subscribe("SUBSCRIBE SELECT * FROM alerts");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();

  // 60 and 120 die in the chain; 200 and 300 route into alerts.
  for (const double amount : {60.0, 120.0, 200.0, 300.0}) {
    ASSERT_TRUE(client
                    .SubmitSync("payments", Row()
                                                .Set("cardId", "cardP")
                                                .Set("merchantId", "m1")
                                                .Set("amount", amount))
                    .ok());
  }
  std::vector<ops::SubRecord> records;
  std::vector<ops::SubRecord> batch;
  for (int i = 0; i < 40 && records.size() < 2; ++i) {
    ASSERT_TRUE(sub.value()->Next(&batch, 250 * kMicrosPerMilli).ok());
    records.insert(records.end(), batch.begin(), batch.end());
  }
  ASSERT_EQ(records.size(), 2u);
  for (const auto& record : records) {
    double amount = 0;
    for (const auto& [name, value] : record.fields) {
      if (name == "amount") amount = value.ToNumber();
    }
    EXPECT_GT(amount, 150.0);
  }
  EXPECT_TRUE(sub.value()->Cancel().ok());

  // Slow-consumer flood: a second tail on payments is never fetched
  // while well over queue_capacity events arrive. The queue must shed
  // the oldest records (typed, counted) instead of growing.
  auto slow = client.Subscribe("SUBSCRIBE SELECT * FROM payments");
  ASSERT_TRUE(slow.ok()) << slow.status().ToString();
  for (int round = 0; round < 5; ++round) {
    std::vector<Row> rows;
    for (int i = 0; i < 300; ++i) {
      rows.push_back(Row()
                         .Set("cardId", "flood")
                         .Set("merchantId", "m")
                         .Set("amount", 1.0));
    }
    for (auto& future : client.SubmitBatch("payments", rows)) {
      ASSERT_TRUE(future.Get().ok());
    }
  }
  ASSERT_TRUE(slow.value()->Next(&batch, 100 * kMicrosPerMilli).ok());
  EXPECT_GT(slow.value()->dropped_total(), 0u);

  // The drops are observable cluster-wide: the hub's counters flow
  // through "__railgun.internals" like any engine metric.
  bool saw_dropped = false;
  const Micros deadline =
      MonotonicClock::Default()->NowMicros() + 10 * kMicrosPerSecond;
  while (!saw_dropped && MonotonicClock::Default()->NowMicros() < deadline) {
    auto samples = client.InternalsSnapshot();
    ASSERT_TRUE(samples.ok()) << samples.status().ToString();
    for (const auto& sample : samples.value()) {
      if (sample.metric == "subscribe.records.dropped" && sample.value > 0) {
        saw_dropped = true;
      }
    }
    if (!saw_dropped) {
      MonotonicClock::Default()->SleepMicros(100 * kMicrosPerMilli);
    }
  }
  EXPECT_TRUE(saw_dropped);

  EXPECT_TRUE(slow.value()->Cancel().ok());
  client.Stop();
  harness.Stop();
}

TEST(RemoteClientTest, SubscribeDowngradesStickilyOnOldServers) {
  // A plain BusServer (no broker extension) is the shape of a peer
  // predating the subscription opcodes: the first Subscribe gets the
  // server's typed NotSupported, and the client never asks again.
  msg::BusOptions bus_options;
  bus_options.delivery_delay = 0;
  msg::InProcessBus bus(bus_options);
  msg::remote::BusServer server(msg::remote::BusServerOptions(), &bus);
  ASSERT_TRUE(server.Start().ok());

  ClientOptions options;
  options.remote_address = server.address();
  Client client(options);
  ASSERT_TRUE(client.Start().ok());
  EXPECT_TRUE(client.Subscribe("SUBSCRIBE SELECT * FROM payments")
                  .status()
                  .IsNotSupported());

  // Sticky: with the server gone, a second Subscribe still answers
  // NotSupported — proof it failed fast locally instead of dialing.
  server.Stop();
  EXPECT_TRUE(client.Subscribe("SUBSCRIBE SELECT * FROM payments")
                  .status()
                  .IsNotSupported());
  client.Stop();
}

}  // namespace
}  // namespace railgun::api
