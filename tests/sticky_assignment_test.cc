// Tests for the Fig. 7 sticky assignment strategy: the two invariants
// (one copy per physical node, budget respected), the preference order
// (previous active -> previous replica -> stale -> least loaded), and
// stickiness under churn.
#include <gtest/gtest.h>

#include "engine/sticky_assignment.h"

namespace railgun::engine {
namespace {

using msg::TopicPartition;

std::vector<TopicPartition> MakeTasks(int n) {
  std::vector<TopicPartition> tasks;
  for (int i = 0; i < n; ++i) tasks.push_back({"t", i});
  return tasks;
}

// Units: two per node across `nodes` nodes.
std::vector<UnitDesc> MakeUnits(int nodes, int units_per_node) {
  std::vector<UnitDesc> units;
  for (int n = 0; n < nodes; ++n) {
    for (int u = 0; u < units_per_node; ++u) {
      units.push_back({"n" + std::to_string(n) + "/u" + std::to_string(u),
                       "n" + std::to_string(n)});
    }
  }
  return units;
}

TEST(StickyAssignmentTest, AssignsEveryTaskExactlyOnce) {
  TaskAssignmentInput in;
  in.tasks = MakeTasks(8);
  in.units = MakeUnits(2, 2);
  in.replication_factor = 1;
  const auto result = ComputeStickyAssignment(in);
  EXPECT_EQ(result.active.size(), 8u);
  EXPECT_TRUE(result.replicas.empty());
}

TEST(StickyAssignmentTest, BudgetBalancesLoad) {
  TaskAssignmentInput in;
  in.tasks = MakeTasks(8);
  in.units = MakeUnits(2, 2);  // 4 units, budget = 2.
  const auto result = ComputeStickyAssignment(in);
  for (const auto& [unit, tasks] : result.active_by_unit) {
    EXPECT_LE(tasks.size(), 2u) << unit;
  }
}

TEST(StickyAssignmentTest, ReplicasNeverColocateWithActiveOnSameNode) {
  TaskAssignmentInput in;
  in.tasks = MakeTasks(6);
  in.units = MakeUnits(3, 2);
  in.replication_factor = 2;
  const auto result = ComputeStickyAssignment(in);
  ASSERT_EQ(result.active.size(), 6u);
  for (const auto& [task, active_unit] : result.active) {
    const std::string active_node =
        active_unit.substr(0, active_unit.find('/'));
    const auto reps = result.replicas.find(task);
    ASSERT_NE(reps, result.replicas.end());
    EXPECT_EQ(reps->second.size(), 1u);
    for (const auto& replica_unit : reps->second) {
      const std::string replica_node =
          replica_unit.substr(0, replica_unit.find('/'));
      EXPECT_NE(replica_node, active_node) << task.ToString();
    }
  }
}

TEST(StickyAssignmentTest, StickinessKeepsPreviousActives) {
  TaskAssignmentInput in;
  in.tasks = MakeTasks(8);
  in.units = MakeUnits(4, 1);
  const auto first = ComputeStickyAssignment(in);

  // Re-run with the previous assignment: nothing should move.
  in.prev_active = first.active;
  const auto second = ComputeStickyAssignment(in);
  EXPECT_EQ(second.moved_active, 0);
  EXPECT_EQ(second.active, first.active);
}

TEST(StickyAssignmentTest, FailedNodesTasksGoToTheirReplicas) {
  TaskAssignmentInput in;
  in.tasks = MakeTasks(4);
  in.units = MakeUnits(3, 1);
  in.replication_factor = 2;
  const auto first = ComputeStickyAssignment(in);

  // Remove node n0's unit; its active tasks must land on a unit that was
  // previously a replica for them (Fig. 7 second preference).
  TaskAssignmentInput in2 = in;
  in2.units.clear();
  for (const auto& u : in.units) {
    if (u.node_id != "n0") in2.units.push_back(u);
  }
  in2.prev_active = first.active;
  for (const auto& [task, units] : first.replicas) {
    in2.prev_replicas[task] =
        std::set<std::string>(units.begin(), units.end());
  }
  const auto second = ComputeStickyAssignment(in2);
  for (const auto& [task, unit] : first.active) {
    if (unit.rfind("n0/", 0) != 0) continue;  // Survivor, stays.
    const auto& new_unit = second.active.at(task);
    EXPECT_TRUE(in2.prev_replicas[task].count(new_unit) > 0)
        << task.ToString() << " went to " << new_unit
        << " which was not a previous replica";
  }
  // Survivors keep their tasks.
  for (const auto& [task, unit] : first.active) {
    if (unit.rfind("n0/", 0) == 0) continue;
    EXPECT_EQ(second.active.at(task), unit);
  }
}

TEST(StickyAssignmentTest, StalePreferredOverCold) {
  // One task, two candidate units; u_stale previously held the task.
  TaskAssignmentInput in;
  in.tasks = MakeTasks(1);
  in.units = {{"u_stale", "nA"}, {"u_cold", "nB"}};
  in.stale[{"t", 0}] = {"u_stale"};
  const auto result = ComputeStickyAssignment(in);
  EXPECT_EQ(result.active.at({"t", 0}), "u_stale");
}

TEST(StickyAssignmentTest, WeightedTasksReduceColocation) {
  TaskAssignmentInput in;
  in.tasks = MakeTasks(4);
  in.units = MakeUnits(2, 1);
  in.weights[{"t", 0}] = 3.0;  // One heavy task.
  const auto result = ComputeStickyAssignment(in);
  // The heavy task's unit should carry fewer additional tasks than the
  // other unit: total weight 6, budget 3 per unit.
  const std::string heavy_unit = result.active.at({"t", 0});
  EXPECT_LE(result.active_by_unit.at(heavy_unit).size(), 2u);
}

TEST(StickyAssignmentTest, MoreUnitsThanTasksLeavesSomeIdle) {
  TaskAssignmentInput in;
  in.tasks = MakeTasks(2);
  in.units = MakeUnits(4, 2);
  const auto result = ComputeStickyAssignment(in);
  EXPECT_EQ(result.active.size(), 2u);
  size_t assigned_units = result.active_by_unit.size();
  EXPECT_LE(assigned_units, 2u);
}

TEST(StickyAssignmentTest, ReplicationCappedByNodeCount) {
  // 2 nodes, replication 3: at most 2 copies can respect the
  // one-copy-per-node invariant; the assigner falls back gracefully.
  TaskAssignmentInput in;
  in.tasks = MakeTasks(2);
  in.units = MakeUnits(2, 2);
  in.replication_factor = 3;
  const auto result = ComputeStickyAssignment(in);
  for (const auto& [task, units] : result.replicas) {
    std::set<std::string> nodes;
    nodes.insert(result.active.at(task).substr(0, 2));
    for (const auto& u : units) {
      nodes.insert(u.substr(0, 2));
    }
    // No node carries two copies.
    EXPECT_EQ(nodes.size(), 1u + units.size());
  }
}

TEST(StickyAssignmentTest, EmptyClusterProducesEmptyAssignment) {
  TaskAssignmentInput in;
  in.tasks = MakeTasks(4);
  const auto result = ComputeStickyAssignment(in);
  EXPECT_TRUE(result.active.empty());
}

TEST(StickyAssignmentTest, TasksOnlyLandOnSubscribedUnits) {
  // Mid-transition group: a new stream "fresh" exists but only half the
  // units registered it yet. A unit that didn't subscribe would consume
  // and drop the topic's messages, so it must never receive the task —
  // not even through the budget-exhausted fallback.
  TaskAssignmentInput in;
  for (int i = 0; i < 4; ++i) in.tasks.push_back({"old", i});
  for (int i = 0; i < 4; ++i) in.tasks.push_back({"fresh", i});
  in.units = MakeUnits(2, 2);
  in.units[0].topics = {"old"};
  in.units[1].topics = {"old"};
  in.units[2].topics = {"old", "fresh"};
  in.units[3].topics = {"old", "fresh"};
  const auto result = ComputeStickyAssignment(in);
  ASSERT_EQ(result.active.size(), in.tasks.size());
  for (const auto& [task, unit] : result.active) {
    if (task.topic == "fresh") {
      EXPECT_TRUE(unit == in.units[2].unit_id || unit == in.units[3].unit_id)
          << task.topic << "/" << task.partition << " -> " << unit;
    }
  }

  // Stickiness must also yield when an owner unsubscribes from a topic:
  // the previous active is no longer eligible.
  TaskAssignmentInput next = in;
  next.prev_active = result.active;
  next.units[2].topics = {"old"};
  next.units[3].topics = {"old"};
  next.units[0].topics = {"old", "fresh"};
  next.units[1].topics = {"old", "fresh"};
  const auto moved = ComputeStickyAssignment(next);
  for (const auto& [task, unit] : moved.active) {
    if (task.topic == "fresh") {
      EXPECT_TRUE(unit == in.units[0].unit_id || unit == in.units[1].unit_id)
          << task.topic << "/" << task.partition << " -> " << unit;
    }
  }
}

TEST(StickyAssignmentTest, NoSubscriberLeavesTaskUnassigned) {
  TaskAssignmentInput in;
  in.tasks = MakeTasks(2);
  in.tasks.push_back({"orphan", 0});
  in.units = MakeUnits(1, 2);
  for (auto& u : in.units) u.topics = {"t"};
  const auto result = ComputeStickyAssignment(in);
  // "t" tasks assigned; the orphan topic waits for a subscriber instead
  // of being consumed-and-dropped.
  EXPECT_EQ(result.active.size(), 2u);
  EXPECT_EQ(result.active.count({"orphan", 0}), 0u);
}

}  // namespace
}  // namespace railgun::engine
