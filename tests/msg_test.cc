// Tests for the messaging layer: topics, keyed partitioning, offsets and
// replay, visibility delay, consumer groups, heartbeat failure detection
// and rebalancing.
#include <gtest/gtest.h>

#include "msg/broker.h"

namespace railgun::msg {
namespace {

BusOptions FastBus(Clock* clock = nullptr) {
  BusOptions options;
  options.delivery_delay = 0;
  options.clock = clock;
  return options;
}

TEST(BusTest, TopicAdministration) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 4).ok());
  EXPECT_TRUE(bus.CreateTopic("t", 4).IsAlreadyExists());
  EXPECT_FALSE(bus.CreateTopic("bad", 0).ok());
  EXPECT_EQ(bus.NumPartitions("t").value(), 4);
  EXPECT_EQ(bus.PartitionsOf("t").size(), 4u);
  ASSERT_TRUE(bus.DeleteTopic("t").ok());
  EXPECT_TRUE(bus.NumPartitions("t").status().IsNotFound());
}

TEST(BusTest, KeyedPartitioningIsStable) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 8).ok());
  // Same key always lands in the same partition.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(bus.Produce("t", "card42", "m" + std::to_string(round)).ok());
  }
  int with_data = 0;
  for (const auto& tp : bus.PartitionsOf("t")) {
    const uint64_t end = bus.EndOffset(tp).value();
    if (end > 0) {
      ++with_data;
      EXPECT_EQ(end, 3u);
    }
  }
  EXPECT_EQ(with_data, 1);
}

TEST(BusTest, FetchByOffsetSupportsReplay) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  for (int i = 0; i < 10; ++i) {
    auto off = bus.ProduceToPartition("t", 0, "k", "m" + std::to_string(i));
    ASSERT_TRUE(off.ok());
    EXPECT_EQ(off.value(), static_cast<uint64_t>(i));
  }
  std::vector<Message> out;
  ASSERT_TRUE(bus.Fetch({"t", 0}, 5, 100, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].payload, "m5");
  EXPECT_EQ(out[0].offset, 5u);
  // Replay from zero re-reads everything.
  ASSERT_TRUE(bus.Fetch({"t", 0}, 0, 100, &out).ok());
  EXPECT_EQ(out.size(), 10u);
}

TEST(BusTest, DeliveryDelayHidesFreshMessages) {
  SimulatedClock clock(1000);
  BusOptions options;
  options.delivery_delay = 500;
  options.clock = &clock;
  MessageBus bus(options);
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.ProduceToPartition("t", 0, "k", "m").ok());

  std::vector<Message> out;
  ASSERT_TRUE(bus.Fetch({"t", 0}, 0, 10, &out).ok());
  EXPECT_TRUE(out.empty());  // Not yet visible.
  clock.Advance(500);
  ASSERT_TRUE(bus.Fetch({"t", 0}, 0, 10, &out).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(GroupTest, SinglePartitionOwnershipWithinGroup) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 4).ok());
  ASSERT_TRUE(
      bus.Subscribe("c1", "g", {"t"}, "node=a", nullptr, {}).ok());
  ASSERT_TRUE(
      bus.Subscribe("c2", "g", {"t"}, "node=b", nullptr, {}).ok());

  // Trigger assignment delivery.
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  ASSERT_TRUE(bus.Poll("c2", 10, &out).ok());

  auto a1 = bus.AssignmentOf("c1");
  auto a2 = bus.AssignmentOf("c2");
  EXPECT_EQ(a1.size() + a2.size(), 4u);
  for (const auto& tp : a1) {
    EXPECT_EQ(std::count(a2.begin(), a2.end(), tp), 0);
  }
}

TEST(GroupTest, PollDeliversOnlyAssignedPartitions) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 2).ok());
  ASSERT_TRUE(bus.Subscribe("c1", "g", {"t"}, "", nullptr, {}).ok());
  ASSERT_TRUE(bus.Subscribe("c2", "g", {"t"}, "", nullptr, {}).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(bus.ProduceToPartition("t", i % 2, "k", "m").ok());
  }
  std::vector<Message> from1, from2, batch;
  // First polls deliver the assignment, subsequent polls the messages.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(bus.Poll("c1", 100, &batch).ok());
    from1.insert(from1.end(), batch.begin(), batch.end());
    ASSERT_TRUE(bus.Poll("c2", 100, &batch).ok());
    from2.insert(from2.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(from1.size() + from2.size(), 20u);
  EXPECT_EQ(from1.size(), 10u);
  EXPECT_EQ(from2.size(), 10u);
}

TEST(GroupTest, RebalanceCallbacksFireOnMembershipChange) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 4).ok());

  std::vector<TopicPartition> assigned1, revoked1;
  RebalanceListener listener;
  listener.on_assigned = [&](const std::vector<TopicPartition>& a) {
    assigned1.insert(assigned1.end(), a.begin(), a.end());
  };
  listener.on_revoked = [&](const std::vector<TopicPartition>& r) {
    revoked1.insert(revoked1.end(), r.begin(), r.end());
  };
  ASSERT_TRUE(bus.Subscribe("c1", "g", {"t"}, "", nullptr, listener).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  EXPECT_EQ(assigned1.size(), 4u);  // Sole member owns everything.

  // A second member takes over some partitions: c1 sees revocations.
  ASSERT_TRUE(bus.Subscribe("c2", "g", {"t"}, "", nullptr, {}).ok());
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  EXPECT_EQ(revoked1.size(), 2u);
}

TEST(GroupTest, HeartbeatTimeoutFencesDeadConsumer) {
  SimulatedClock clock(0);
  BusOptions options = FastBus(&clock);
  options.session_timeout = 1000;
  MessageBus bus(options);
  ASSERT_TRUE(bus.CreateTopic("t", 2).ok());
  ASSERT_TRUE(bus.Subscribe("alive", "g", {"t"}, "", nullptr, {}).ok());
  ASSERT_TRUE(bus.Subscribe("dead", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("alive", 10, &out).ok());
  ASSERT_TRUE(bus.Poll("dead", 10, &out).ok());
  EXPECT_EQ(bus.AssignmentOf("dead").size(), 1u);

  // "dead" stops polling; time passes; "alive" keeps polling.
  clock.Advance(2000);
  ASSERT_TRUE(bus.Poll("alive", 10, &out).ok());  // Triggers liveness check.
  ASSERT_TRUE(bus.Poll("alive", 10, &out).ok());  // Picks up new assignment.
  EXPECT_EQ(bus.AssignmentOf("alive").size(), 2u);
  EXPECT_TRUE(bus.Poll("dead", 10, &out).IsUnavailable());
}

TEST(GroupTest, KillConsumerRebalancesImmediately) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 2).ok());
  ASSERT_TRUE(bus.Subscribe("c1", "g", {"t"}, "", nullptr, {}).ok());
  ASSERT_TRUE(bus.Subscribe("c2", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  const uint64_t before = bus.rebalance_count();
  ASSERT_TRUE(bus.KillConsumer("c2").ok());
  EXPECT_GT(bus.rebalance_count(), before);
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  EXPECT_EQ(bus.AssignmentOf("c1").size(), 2u);
}

TEST(GroupTest, SeekRewindsConsumption) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(bus.ProduceToPartition("t", 0, "k", std::to_string(i)).ok());
  }
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());  // Assignment.
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());
  EXPECT_EQ(out.size(), 5u);
  ASSERT_TRUE(bus.Seek("c", {"t", 0}, 2).ok());
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].payload, "2");
}

TEST(GroupTest, UnsubscribeTriggersRebalance) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 2).ok());
  ASSERT_TRUE(bus.Subscribe("c1", "g", {"t"}, "", nullptr, {}).ok());
  ASSERT_TRUE(bus.Subscribe("c2", "g", {"t"}, "", nullptr, {}).ok());
  ASSERT_TRUE(bus.Unsubscribe("c2").ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  EXPECT_EQ(bus.AssignmentOf("c1").size(), 2u);
  EXPECT_TRUE(bus.Poll("c2", 10, &out).IsNotFound());
}

TEST(RoundRobinTest, SpreadsPartitionsEvenly) {
  RoundRobinStrategy strategy;
  std::vector<MemberInfo> members = {{"m1", "", {}}, {"m2", "", {}},
                                     {"m3", "", {}}};
  std::vector<TopicPartition> partitions;
  for (int p = 0; p < 9; ++p) partitions.push_back({"t", p});
  const Assignment result = strategy.Assign(members, partitions);
  for (const auto& [member, tps] : result) {
    EXPECT_EQ(tps.size(), 3u);
  }
}

}  // namespace
}  // namespace railgun::msg
