// Tests for the messaging layer: topics, keyed partitioning, offsets and
// replay, visibility delay, consumer groups, heartbeat failure detection
// and rebalancing — plus the batched, wake-on-arrival path: blocking
// Poll, ProduceBatch ordering, rebalance delivery to parked consumers,
// and retention truncation.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <thread>

#include "msg/broker.h"

namespace railgun::msg {
namespace {

BusOptions FastBus(Clock* clock = nullptr) {
  BusOptions options;
  options.delivery_delay = 0;
  options.clock = clock;
  return options;
}

TEST(BusTest, TopicAdministration) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 4).ok());
  EXPECT_TRUE(bus.CreateTopic("t", 4).IsAlreadyExists());
  EXPECT_FALSE(bus.CreateTopic("bad", 0).ok());
  EXPECT_EQ(bus.NumPartitions("t").value(), 4);
  EXPECT_EQ(bus.PartitionsOf("t").size(), 4u);
  ASSERT_TRUE(bus.DeleteTopic("t").ok());
  EXPECT_TRUE(bus.NumPartitions("t").status().IsNotFound());
}

TEST(BusTest, PinnedGroupStrategySurvivesAnEmptiedGroup) {
  // A broker process pre-installs the engine's coordinator with
  // SetGroupStrategy; remote subscribers pass nullptr. The pin must
  // outlive the group emptying out (e.g. the last worker process
  // leaving), or the next joiner would silently get the default
  // round-robin policy.
  struct CountingStrategy : AssignmentStrategy {
    int calls = 0;
    Assignment Assign(const std::vector<MemberInfo>& members,
                      const std::vector<TopicPartition>& partitions)
        override {
      ++calls;
      Assignment result;
      for (const auto& member : members) {
        result[member.member_id] = partitions;
      }
      return result;
    }
    std::string name() const override { return "counting"; }
  };
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 2).ok());
  CountingStrategy strategy;
  bus.SetGroupStrategy("g", &strategy);

  ASSERT_TRUE(bus.Subscribe("a", "g", {"t"}, "", nullptr, {}).ok());
  EXPECT_EQ(strategy.calls, 1);
  ASSERT_TRUE(bus.Unsubscribe("a").ok());

  // The group emptied out; a fresh member must still be placed by the
  // pinned strategy, not the default.
  ASSERT_TRUE(bus.Subscribe("b", "g", {"t"}, "", nullptr, {}).ok());
  EXPECT_EQ(strategy.calls, 2);
  EXPECT_EQ(bus.AssignmentOf("b").size(), 2u);
  ASSERT_TRUE(bus.Unsubscribe("b").ok());
}

TEST(BusTest, KeyedPartitioningIsStable) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 8).ok());
  // Same key always lands in the same partition.
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(bus.Produce("t", "card42", "m" + std::to_string(round)).ok());
  }
  int with_data = 0;
  for (const auto& tp : bus.PartitionsOf("t")) {
    const uint64_t end = bus.EndOffset(tp).value();
    if (end > 0) {
      ++with_data;
      EXPECT_EQ(end, 3u);
    }
  }
  EXPECT_EQ(with_data, 1);
}

TEST(BusTest, FetchByOffsetSupportsReplay) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  for (int i = 0; i < 10; ++i) {
    auto off = bus.ProduceToPartition("t", 0, "k", "m" + std::to_string(i));
    ASSERT_TRUE(off.ok());
    EXPECT_EQ(off.value(), static_cast<uint64_t>(i));
  }
  std::vector<Message> out;
  ASSERT_TRUE(bus.Fetch({"t", 0}, 5, 100, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].payload, "m5");
  EXPECT_EQ(out[0].offset, 5u);
  // Replay from zero re-reads everything.
  ASSERT_TRUE(bus.Fetch({"t", 0}, 0, 100, &out).ok());
  EXPECT_EQ(out.size(), 10u);
}

TEST(BusTest, DeliveryDelayHidesFreshMessages) {
  SimulatedClock clock(1000);
  BusOptions options;
  options.delivery_delay = 500;
  options.clock = &clock;
  MessageBus bus(options);
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.ProduceToPartition("t", 0, "k", "m").ok());

  std::vector<Message> out;
  ASSERT_TRUE(bus.Fetch({"t", 0}, 0, 10, &out).ok());
  EXPECT_TRUE(out.empty());  // Not yet visible.
  clock.Advance(500);
  ASSERT_TRUE(bus.Fetch({"t", 0}, 0, 10, &out).ok());
  EXPECT_EQ(out.size(), 1u);
}

TEST(GroupTest, SinglePartitionOwnershipWithinGroup) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 4).ok());
  ASSERT_TRUE(
      bus.Subscribe("c1", "g", {"t"}, "node=a", nullptr, {}).ok());
  ASSERT_TRUE(
      bus.Subscribe("c2", "g", {"t"}, "node=b", nullptr, {}).ok());

  // Trigger assignment delivery.
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  ASSERT_TRUE(bus.Poll("c2", 10, &out).ok());

  auto a1 = bus.AssignmentOf("c1");
  auto a2 = bus.AssignmentOf("c2");
  EXPECT_EQ(a1.size() + a2.size(), 4u);
  for (const auto& tp : a1) {
    EXPECT_EQ(std::count(a2.begin(), a2.end(), tp), 0);
  }
}

TEST(GroupTest, PollDeliversOnlyAssignedPartitions) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 2).ok());
  ASSERT_TRUE(bus.Subscribe("c1", "g", {"t"}, "", nullptr, {}).ok());
  ASSERT_TRUE(bus.Subscribe("c2", "g", {"t"}, "", nullptr, {}).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(bus.ProduceToPartition("t", i % 2, "k", "m").ok());
  }
  std::vector<Message> from1, from2, batch;
  // First polls deliver the assignment, subsequent polls the messages.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(bus.Poll("c1", 100, &batch).ok());
    from1.insert(from1.end(), batch.begin(), batch.end());
    ASSERT_TRUE(bus.Poll("c2", 100, &batch).ok());
    from2.insert(from2.end(), batch.begin(), batch.end());
  }
  EXPECT_EQ(from1.size() + from2.size(), 20u);
  EXPECT_EQ(from1.size(), 10u);
  EXPECT_EQ(from2.size(), 10u);
}

TEST(GroupTest, RebalanceCallbacksFireOnMembershipChange) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 4).ok());

  std::vector<TopicPartition> assigned1, revoked1;
  RebalanceListener listener;
  listener.on_assigned = [&](const std::vector<TopicPartition>& a) {
    assigned1.insert(assigned1.end(), a.begin(), a.end());
  };
  listener.on_revoked = [&](const std::vector<TopicPartition>& r) {
    revoked1.insert(revoked1.end(), r.begin(), r.end());
  };
  ASSERT_TRUE(bus.Subscribe("c1", "g", {"t"}, "", nullptr, listener).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  EXPECT_EQ(assigned1.size(), 4u);  // Sole member owns everything.

  // A second member takes over some partitions: c1 sees revocations.
  ASSERT_TRUE(bus.Subscribe("c2", "g", {"t"}, "", nullptr, {}).ok());
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  EXPECT_EQ(revoked1.size(), 2u);
}

TEST(GroupTest, HeartbeatTimeoutFencesDeadConsumer) {
  SimulatedClock clock(0);
  BusOptions options = FastBus(&clock);
  options.session_timeout = 1000;
  MessageBus bus(options);
  ASSERT_TRUE(bus.CreateTopic("t", 2).ok());
  ASSERT_TRUE(bus.Subscribe("alive", "g", {"t"}, "", nullptr, {}).ok());
  ASSERT_TRUE(bus.Subscribe("dead", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("alive", 10, &out).ok());
  ASSERT_TRUE(bus.Poll("dead", 10, &out).ok());
  EXPECT_EQ(bus.AssignmentOf("dead").size(), 1u);

  // "dead" stops polling; time passes; "alive" keeps polling.
  clock.Advance(2000);
  ASSERT_TRUE(bus.Poll("alive", 10, &out).ok());  // Triggers liveness check.
  ASSERT_TRUE(bus.Poll("alive", 10, &out).ok());  // Picks up new assignment.
  EXPECT_EQ(bus.AssignmentOf("alive").size(), 2u);
  EXPECT_TRUE(bus.Poll("dead", 10, &out).IsUnavailable());
}

TEST(GroupTest, KillConsumerRebalancesImmediately) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 2).ok());
  ASSERT_TRUE(bus.Subscribe("c1", "g", {"t"}, "", nullptr, {}).ok());
  ASSERT_TRUE(bus.Subscribe("c2", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  const uint64_t before = bus.rebalance_count();
  ASSERT_TRUE(bus.KillConsumer("c2").ok());
  EXPECT_GT(bus.rebalance_count(), before);
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  EXPECT_EQ(bus.AssignmentOf("c1").size(), 2u);
}

TEST(GroupTest, SeekRewindsConsumption) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(bus.ProduceToPartition("t", 0, "k", std::to_string(i)).ok());
  }
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());  // Assignment.
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());
  EXPECT_EQ(out.size(), 5u);
  ASSERT_TRUE(bus.Seek("c", {"t", 0}, 2).ok());
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].payload, "2");
}

TEST(GroupTest, PartitionsOnlyAssignedToSubscribedMembers) {
  // One group, heterogeneous topic sets mid-transition: a stream was
  // just created and only c2 re-subscribed with its topic so far. t2's
  // partitions must never land on c1 — a member that didn't subscribe
  // would consume and drop the messages (offset advances, events lost).
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t1", 2).ok());
  ASSERT_TRUE(bus.CreateTopic("t2", 2).ok());
  ASSERT_TRUE(bus.Subscribe("c1", "g", {"t1"}, "", nullptr, {}).ok());
  ASSERT_TRUE(
      bus.Subscribe("c2", "g", {"t1", "t2"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  ASSERT_TRUE(bus.Poll("c2", 10, &out).ok());

  for (const auto& tp : bus.AssignmentOf("c1")) {
    EXPECT_NE(tp.topic, "t2") << "t2/" << tp.partition << " on c1";
  }
  std::set<int> t2_partitions;
  for (const auto& tp : bus.AssignmentOf("c2")) {
    if (tp.topic == "t2") t2_partitions.insert(tp.partition);
  }
  EXPECT_EQ(t2_partitions.size(), 2u);

  // An event produced into the not-yet-universally-subscribed topic is
  // delivered to the subscribed member, not dropped.
  ASSERT_TRUE(bus.ProduceToPartition("t2", 0, "k", "first").ok());
  ASSERT_TRUE(bus.Poll("c2", 10, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, "first");
}

TEST(GroupTest, UnsubscribeTriggersRebalance) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 2).ok());
  ASSERT_TRUE(bus.Subscribe("c1", "g", {"t"}, "", nullptr, {}).ok());
  ASSERT_TRUE(bus.Subscribe("c2", "g", {"t"}, "", nullptr, {}).ok());
  ASSERT_TRUE(bus.Unsubscribe("c2").ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  EXPECT_EQ(bus.AssignmentOf("c1").size(), 2u);
  EXPECT_TRUE(bus.Poll("c2", 10, &out).IsNotFound());
}

TEST(BlockingPollTest, WakesOnProduce) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());  // Absorb the assignment.

  std::thread producer([&bus] {
    MonotonicClock::Default()->SleepMicros(20 * kMicrosPerMilli);
    EXPECT_TRUE(bus.ProduceToPartition("t", 0, "k", "wake").ok());
  });
  const Micros start = MonotonicClock::Default()->NowMicros();
  // Park with a generous deadline: the produce must cut it short.
  ASSERT_TRUE(bus.Poll("c", 10, &out, 5 * kMicrosPerSecond).ok());
  const Micros elapsed = MonotonicClock::Default()->NowMicros() - start;
  producer.join();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, "wake");
  EXPECT_LT(elapsed, kMicrosPerSecond);
}

TEST(BlockingPollTest, HonorsMaxWaitWhenNothingArrives) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());  // Absorb the assignment.

  const Micros start = MonotonicClock::Default()->NowMicros();
  ASSERT_TRUE(bus.Poll("c", 10, &out, 50 * kMicrosPerMilli).ok());
  const Micros elapsed = MonotonicClock::Default()->NowMicros() - start;
  EXPECT_TRUE(out.empty());
  EXPECT_GE(elapsed, 40 * kMicrosPerMilli);
}

TEST(BlockingPollTest, WakeInterruptsParkedPoll) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());  // Absorb the assignment.

  std::thread waker([&bus] {
    MonotonicClock::Default()->SleepMicros(20 * kMicrosPerMilli);
    bus.Wake();
  });
  const Micros start = MonotonicClock::Default()->NowMicros();
  ASSERT_TRUE(bus.Poll("c", 10, &out, 5 * kMicrosPerSecond).ok());
  const Micros elapsed = MonotonicClock::Default()->NowMicros() - start;
  waker.join();
  EXPECT_TRUE(out.empty());  // Interrupted, not satisfied.
  EXPECT_LT(elapsed, kMicrosPerSecond);
}

TEST(BlockingPollTest, WakeConsumerIsLevelTriggered) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());  // Absorb the assignment.

  EXPECT_TRUE(bus.WakeConsumer("nobody").IsNotFound());
  // A wake issued while the consumer is between polls is consumed by
  // the NEXT poll (no lost-wakeup window): it returns immediately.
  ASSERT_TRUE(bus.WakeConsumer("c").ok());
  const Micros start = MonotonicClock::Default()->NowMicros();
  ASSERT_TRUE(bus.Poll("c", 10, &out, 5 * kMicrosPerSecond).ok());
  EXPECT_LT(MonotonicClock::Default()->NowMicros() - start,
            kMicrosPerSecond);
  EXPECT_TRUE(out.empty());

  // Consumed: the next blocking poll waits normally again.
  const Micros start2 = MonotonicClock::Default()->NowMicros();
  ASSERT_TRUE(bus.Poll("c", 10, &out, 50 * kMicrosPerMilli).ok());
  EXPECT_GE(MonotonicClock::Default()->NowMicros() - start2,
            40 * kMicrosPerMilli);
}

TEST(ProduceBatchTest, PreservesPerKeyPartitionOrdering) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 8).ok());
  // Interleave 16 keys, 32 records each, in one batch.
  std::vector<ProduceRecord> records;
  for (int seq = 0; seq < 32; ++seq) {
    for (int k = 0; k < 16; ++k) {
      records.push_back({"key" + std::to_string(k),
                         "key" + std::to_string(k) + ":" +
                             std::to_string(seq)});
    }
  }
  ASSERT_TRUE(bus.ProduceBatch("t", std::move(records)).ok());

  // Each key lands in exactly one partition, with its sequence intact.
  std::map<std::string, int> next_seq;
  std::map<std::string, int> partition_of;
  for (const auto& tp : bus.PartitionsOf("t")) {
    std::vector<Message> out;
    ASSERT_TRUE(bus.Fetch(tp, 0, 1000, &out).ok());
    for (const auto& m : out) {
      auto it = partition_of.find(m.key);
      if (it == partition_of.end()) {
        partition_of[m.key] = tp.partition;
      } else {
        EXPECT_EQ(it->second, tp.partition) << "key split across partitions";
      }
      const int seq = atoi(m.payload.substr(m.payload.find(':') + 1).c_str());
      EXPECT_EQ(seq, next_seq[m.key]) << "out of order for " << m.key;
      next_seq[m.key] = seq + 1;
    }
  }
  EXPECT_EQ(partition_of.size(), 16u);
  for (const auto& [key, seq] : next_seq) EXPECT_EQ(seq, 32) << key;
}

TEST(ProduceBatchTest, UnknownTopicRejected) {
  MessageBus bus(FastBus());
  std::vector<ProduceRecord> records = {{"k", "v"}};
  EXPECT_TRUE(bus.ProduceBatch("nope", std::move(records)).IsNotFound());
}

TEST(BlockingPollTest, RebalanceWhileParkedDeliversCallbacksExactlyOnce) {
  MessageBus bus(FastBus());
  ASSERT_TRUE(bus.CreateTopic("t", 4).ok());

  std::atomic<int> revoked_calls{0}, assigned_calls{0};
  std::atomic<int> revoked_total{0};
  RebalanceListener listener;
  listener.on_revoked = [&](const std::vector<TopicPartition>& r) {
    ++revoked_calls;
    revoked_total += static_cast<int>(r.size());
  };
  listener.on_assigned = [&](const std::vector<TopicPartition>& a) {
    ++assigned_calls;
    (void)a;
  };
  ASSERT_TRUE(bus.Subscribe("c1", "g", {"t"}, "", nullptr, listener).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());  // Initial assignment.
  ASSERT_EQ(assigned_calls.load(), 1);

  // Park c1 in a blocking poll, then trigger a rebalance from another
  // thread: the parked poll must wake and deliver the revocations.
  std::thread joiner([&bus] {
    MonotonicClock::Default()->SleepMicros(20 * kMicrosPerMilli);
    EXPECT_TRUE(bus.Subscribe("c2", "g", {"t"}, "", nullptr, {}).ok());
  });
  const Micros start = MonotonicClock::Default()->NowMicros();
  ASSERT_TRUE(bus.Poll("c1", 10, &out, 5 * kMicrosPerSecond).ok());
  const Micros elapsed = MonotonicClock::Default()->NowMicros() - start;
  joiner.join();
  EXPECT_LT(elapsed, kMicrosPerSecond);
  EXPECT_EQ(revoked_calls.load(), 1);
  EXPECT_EQ(revoked_total.load(), 2);

  // Subsequent polls observe no further generation change: the
  // callbacks fired exactly once.
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  ASSERT_TRUE(bus.Poll("c1", 10, &out).ok());
  EXPECT_EQ(revoked_calls.load(), 1);
  EXPECT_EQ(assigned_calls.load(), 1);
}

TEST(BlockingPollTest, ParkDeadlineFollowsTheBusClockDomain) {
  // A bus on a simulated clock must interpret max_wait in virtual time,
  // the same domain as message visibility — not as a real-time deadline.
  SimulatedClock clock(0);
  BusOptions options = FastBus(&clock);
  options.session_timeout = kMicrosPerHour;  // Irrelevant here.
  MessageBus bus(options);
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());  // Assignment.

  // Nothing is produced. Poll with a 10-virtual-second max_wait; another
  // thread advances the simulated clock past the deadline almost
  // immediately. The poll must return as soon as it notices the virtual
  // deadline passed — not sleep 10 real seconds.
  std::thread advancer([&clock] {
    MonotonicClock::Default()->SleepMicros(20 * kMicrosPerMilli);
    clock.Advance(10 * kMicrosPerSecond);
  });
  const Micros start = MonotonicClock::Default()->NowMicros();
  ASSERT_TRUE(bus.Poll("c", 10, &out, 10 * kMicrosPerSecond).ok());
  const Micros elapsed = MonotonicClock::Default()->NowMicros() - start;
  advancer.join();
  EXPECT_TRUE(out.empty());
  EXPECT_LT(elapsed, 2 * kMicrosPerSecond)
      << "virtual-time max_wait was slept out in real time";
}

TEST(BlockingPollTest, SimulatedVisibilityWakesParkedConsumer) {
  // Delivery delay in virtual time: a parked consumer must notice the
  // message became visible once the simulated clock advances, without
  // any extra produce or wake.
  SimulatedClock clock(0);
  BusOptions options;
  options.delivery_delay = kMicrosPerSecond;
  options.session_timeout = kMicrosPerHour;
  options.clock = &clock;
  MessageBus bus(options);
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());  // Assignment.
  ASSERT_TRUE(bus.ProduceToPartition("t", 0, "k", "m").ok());

  std::thread advancer([&clock] {
    MonotonicClock::Default()->SleepMicros(20 * kMicrosPerMilli);
    clock.Advance(kMicrosPerSecond);  // Message becomes visible.
  });
  const Micros start = MonotonicClock::Default()->NowMicros();
  ASSERT_TRUE(bus.Poll("c", 10, &out, kMicrosPerHour).ok());
  const Micros elapsed = MonotonicClock::Default()->NowMicros() - start;
  advancer.join();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].payload, "m");
  EXPECT_LT(elapsed, 2 * kMicrosPerSecond);
}

TEST(RetentionTest, TruncatesBelowMinimumCommittedOffset) {
  BusOptions options = FastBus();
  options.retention_messages = 5;
  MessageBus bus(options);
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());  // Assignment (position 0).

  // The consumer's committed position pins the log head even past the
  // retention cap: nothing it hasn't read may be dropped.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(bus.ProduceToPartition("t", 0, "k", std::to_string(i)).ok());
  }
  EXPECT_EQ(bus.BaseOffset({"t", 0}).value(), 0u);

  // Once the consumer commits, the next produce trims to the cap.
  ASSERT_TRUE(bus.Commit("c", {"t", 0}, 20).ok());
  ASSERT_TRUE(bus.ProduceToPartition("t", 0, "k", "21st").ok());
  const uint64_t base = bus.BaseOffset({"t", 0}).value();
  EXPECT_EQ(base, 21u - 5u);
  // Replay from zero clamps to the earliest retained message.
  ASSERT_TRUE(bus.Fetch({"t", 0}, 0, 100, &out).ok());
  ASSERT_EQ(out.size(), 5u);
  EXPECT_EQ(out[0].offset, base);
}

TEST(RetentionTest, PartiallyCommittedConsumerPinsTheFloor) {
  BusOptions options = FastBus();
  options.retention_messages = 3;
  MessageBus bus(options);
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());

  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(bus.ProduceToPartition("t", 0, "k", std::to_string(i)).ok());
  }
  ASSERT_TRUE(bus.Commit("c", {"t", 0}, 4).ok());
  for (int i = 10; i < 20; ++i) {
    ASSERT_TRUE(bus.ProduceToPartition("t", 0, "k", std::to_string(i)).ok());
  }
  // Cap would allow base 17, but offset 4 is the consumer's floor.
  EXPECT_EQ(bus.BaseOffset({"t", 0}).value(), 4u);
  ASSERT_TRUE(bus.Poll("c", 100, &out).ok());
  ASSERT_FALSE(out.empty());
  EXPECT_EQ(out[0].offset, 4u);  // Nothing unread was lost.
}

TEST(RetentionTest, SeekClampsToRetainedBase) {
  BusOptions options = FastBus();
  options.retention_messages = 10;
  MessageBus bus(options);
  ASSERT_TRUE(bus.CreateTopic("t", 1).ok());
  ASSERT_TRUE(bus.Subscribe("c", "g", {"t"}, "", nullptr, {}).ok());
  std::vector<Message> out;
  ASSERT_TRUE(bus.Poll("c", 10, &out).ok());  // Assignment.

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(bus.ProduceToPartition("t", 0, "k", std::to_string(i)).ok());
  }
  ASSERT_TRUE(bus.Commit("c", {"t", 0}, 100).ok());
  ASSERT_TRUE(bus.ProduceToPartition("t", 0, "k", "100").ok());
  const uint64_t base = bus.BaseOffset({"t", 0}).value();
  ASSERT_GT(base, 0u);

  // A replaying consumer seeking below the trimmed head must be clamped
  // to the earliest retained message, like Fetch — never positioned (and
  // its committed floor never pinned) inside truncated data.
  ASSERT_TRUE(bus.Seek("c", {"t", 0}, 0).ok());
  EXPECT_EQ(bus.PositionOf("c", {"t", 0}).value(), base)
      << "seek positioned the consumer inside truncated data";
  ASSERT_TRUE(bus.Poll("c", 1, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].offset, base);

  // Seeks into retained data still rewind exactly.
  ASSERT_TRUE(bus.Seek("c", {"t", 0}, base + 5).ok());
  EXPECT_EQ(bus.PositionOf("c", {"t", 0}).value(), base + 5);
  ASSERT_TRUE(bus.Poll("c", 1, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].offset, base + 5);
}

TEST(RoundRobinTest, SpreadsPartitionsEvenly) {
  RoundRobinStrategy strategy;
  std::vector<MemberInfo> members = {{"m1", "", {}}, {"m2", "", {}},
                                     {"m3", "", {}}};
  std::vector<TopicPartition> partitions;
  for (int p = 0; p < 9; ++p) partitions.push_back({"t", p});
  const Assignment result = strategy.Assign(members, partitions);
  for (const auto& [member, tps] : result) {
    EXPECT_EQ(tps.size(), 3u);
  }
}

}  // namespace
}  // namespace railgun::msg
