// Tests for the front-end layer in isolation: event routing to
// partitioner topics, reply collection and completion, and the timeout
// path for replies that never arrive.
#include <gtest/gtest.h>

#include <atomic>

#include "engine/frontend.h"
#include "msg/broker.h"

namespace railgun::engine {
namespace {

using reservoir::Event;
using reservoir::FieldType;
using reservoir::FieldValue;

StreamDef TwoPartitionerStream() {
  StreamDef stream;
  stream.name = "payments";
  stream.fields = {{"cardId", FieldType::kString},
                   {"merchantId", FieldType::kString},
                   {"amount", FieldType::kDouble}};
  stream.partitioners = {"cardId", "merchantId"};
  stream.partitions_per_topic = 2;
  return stream;
}

Event SampleEvent() {
  Event e;
  e.timestamp = 1000;
  e.id = 1;
  e.values = {FieldValue("card7"), FieldValue("m3"), FieldValue(5.0)};
  return e;
}

// Submission is pipelined: the front-end thread fans queued events out
// in batches, so tests wait for the publishes to land on the bus.
uint64_t WaitForTopicTotal(msg::MessageBus* bus, const std::string& topic,
                           uint64_t expected) {
  uint64_t total = 0;
  for (int i = 0; i < 500; ++i) {
    total = 0;
    for (const auto& tp : bus->PartitionsOf(topic)) {
      total += bus->EndOffset(tp).value();
    }
    if (total >= expected) break;
    MonotonicClock::Default()->SleepMicros(1000);
  }
  return total;
}

class FrontEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    msg::BusOptions bus_options;
    bus_options.delivery_delay = 0;
    bus_.reset(new msg::MessageBus(bus_options));
    FrontEndOptions options;
    options.request_timeout = 300 * kMicrosPerMilli;
    frontend_.reset(new FrontEnd(options, "nodeT", bus_.get(),
                                 MonotonicClock::Default()));
    ASSERT_TRUE(frontend_->Start().ok());
    ASSERT_TRUE(frontend_->RegisterStream(TwoPartitionerStream()).ok());
  }

  void TearDown() override { frontend_->Stop(); }

  std::unique_ptr<msg::MessageBus> bus_;
  std::unique_ptr<FrontEnd> frontend_;
};

TEST_F(FrontEndTest, RoutesEventToEveryPartitionerTopic) {
  ASSERT_TRUE(frontend_->SubmitNoReply("payments", SampleEvent()).ok());
  EXPECT_EQ(WaitForTopicTotal(bus_.get(), "payments.cardId", 1), 1u);
  EXPECT_EQ(WaitForTopicTotal(bus_.get(), "payments.merchantId", 1), 1u);
}

TEST_F(FrontEndTest, UnknownStreamRejected) {
  EXPECT_TRUE(frontend_->SubmitNoReply("nope", SampleEvent()).IsNotFound());
  EXPECT_TRUE(
      frontend_
          ->Submit("nope", SampleEvent(),
                   [](Status, const std::vector<MetricReply>&) {})
          .IsNotFound());
}

TEST_F(FrontEndTest, CompletesWhenAllPartitionerRepliesArrive) {
  std::atomic<int> calls{0};
  std::atomic<size_t> results_seen{0};
  ASSERT_TRUE(frontend_
                  ->Submit("payments", SampleEvent(),
                           [&](Status s,
                               const std::vector<MetricReply>& results) {
                             EXPECT_TRUE(s.ok());
                             results_seen = results.size();
                             ++calls;
                           })
                  .ok());

  // Simulate the two task processors answering: read the envelopes to
  // learn the request id, then produce replies to the reply topic.
  ASSERT_EQ(WaitForTopicTotal(bus_.get(), "payments.cardId", 1), 1u);
  ASSERT_EQ(WaitForTopicTotal(bus_.get(), "payments.merchantId", 1), 1u);
  std::vector<msg::Message> batch;
  uint64_t request_id = 0;
  for (const auto& topic : {"payments.cardId", "payments.merchantId"}) {
    for (const auto& tp : bus_->PartitionsOf(topic)) {
      ASSERT_TRUE(bus_->Fetch(tp, 0, 10, &batch).ok());
      for (const auto& message : batch) {
        EventEnvelope env;
        const reservoir::Schema schema(0, TwoPartitionerStream().fields);
        ASSERT_TRUE(
            DecodeEventEnvelope(Slice(message.payload), schema, &env).ok());
        request_id = env.request_id;
        EXPECT_EQ(env.reply_topic, frontend_->reply_topic());
        ReplyEnvelope reply;
        reply.request_id = request_id;
        reply.results.push_back(
            {"count(*)", "card7", FieldValue(int64_t{1})});
        std::string encoded;
        EncodeReplyEnvelope(reply, &encoded);
        ASSERT_TRUE(
            bus_->Produce(env.reply_topic, "k", std::move(encoded)).ok());
      }
    }
  }
  ASSERT_NE(request_id, 0u);

  for (int i = 0; i < 200 && calls == 0; ++i) {
    MonotonicClock::Default()->SleepMicros(5000);
  }
  EXPECT_EQ(calls.load(), 1);  // Exactly one completion.
  EXPECT_EQ(results_seen.load(), 2u);  // One result per partitioner reply.
  EXPECT_EQ(frontend_->completed_requests(), 1u);
  EXPECT_EQ(frontend_->timed_out_requests(), 0u);
}

TEST_F(FrontEndTest, TimesOutWithTypedStatusAndPartialResults) {
  std::atomic<int> calls{0};
  std::atomic<bool> unavailable{false};
  ASSERT_TRUE(frontend_
                  ->Submit("payments", SampleEvent(),
                           [&](Status s, const std::vector<MetricReply>&) {
                             unavailable = s.IsUnavailable();
                             ++calls;
                           })
                  .ok());
  // Nobody replies: the 300 ms deadline must fire exactly once, with a
  // typed Unavailable status (not a silent OK).
  for (int i = 0; i < 300 && calls == 0; ++i) {
    MonotonicClock::Default()->SleepMicros(5000);
  }
  EXPECT_EQ(calls.load(), 1);
  EXPECT_TRUE(unavailable.load());
  EXPECT_EQ(frontend_->timed_out_requests(), 1u);
}

TEST_F(FrontEndTest, LateRepliesAfterTimeoutAreDiscarded) {
  std::atomic<int> calls{0};
  ASSERT_TRUE(frontend_
                  ->Submit("payments", SampleEvent(),
                           [&](Status, const std::vector<MetricReply>&) {
                             ++calls;
                           })
                  .ok());
  for (int i = 0; i < 300 && calls == 0; ++i) {
    MonotonicClock::Default()->SleepMicros(5000);
  }
  ASSERT_EQ(calls.load(), 1);  // Timed out.

  // A straggler reply arrives afterwards: no double completion, no crash
  // (paper §5: late aggregation replies are discarded upstream).
  ReplyEnvelope reply;
  reply.request_id = 12345;  // Unknown/expired id.
  std::string encoded;
  EncodeReplyEnvelope(reply, &encoded);
  ASSERT_TRUE(
      bus_->Produce(frontend_->reply_topic(), "k", std::move(encoded)).ok());
  MonotonicClock::Default()->SleepMicros(50000);
  EXPECT_EQ(calls.load(), 1);
}

TEST_F(FrontEndTest, StopFailsOutstandingRequests) {
  std::atomic<int> calls{0};
  std::atomic<bool> unavailable{false};
  ASSERT_TRUE(frontend_
                  ->Submit("payments", SampleEvent(),
                           [&](Status s, const std::vector<MetricReply>&) {
                             unavailable = s.IsUnavailable();
                             ++calls;
                           })
                  .ok());
  frontend_->Stop();
  // Every accepted request completes exactly once, with a typed error.
  EXPECT_EQ(calls.load(), 1);
  EXPECT_TRUE(unavailable.load());
}

TEST(FrontEndLifecycleTest, SubmitBeforeStartIsUnavailable) {
  msg::BusOptions bus_options;
  bus_options.delivery_delay = 0;
  msg::MessageBus bus(bus_options);
  FrontEnd frontend(FrontEndOptions{}, "nodeL", &bus,
                    MonotonicClock::Default());
  ASSERT_TRUE(frontend.RegisterStream(TwoPartitionerStream()).ok());
  EXPECT_TRUE(frontend
                  .Submit("payments", SampleEvent(),
                          [](Status, const std::vector<MetricReply>&) {})
                  .IsUnavailable());
}

}  // namespace
}  // namespace railgun::engine
