// Tests for the membership & metadata subsystem: wire codecs
// (StreamDef / ClusterView round trips, truncation robustness), the
// MetadataService's lease lifecycle under a SimulatedClock (expiry
// after exactly the configured timeout, unit fencing, one rebalance,
// tasks landing on survivors), DDL absorption into the schema
// registry, and the full multi-process topology over loopback TCP:
// broker + worker nodes + remote clients, including a client
// submitting to a stream it did not create and a graceful node leave
// that preserves every acked event.
#include <gtest/gtest.h>

#include <algorithm>

#include "api/client.h"
#include "engine/cluster.h"
#include "engine/coordinator.h"
#include "engine/stream_def.h"
#include "meta/broker.h"
#include "meta/cluster_view.h"
#include "meta/metadata_service.h"
#include "meta/worker_node.h"
#include "query/query.h"

namespace railgun::meta {
namespace {

engine::StreamDef SampleStreamDef() {
  engine::StreamDef def;
  def.name = "payments";
  def.fields = {{"cardId", reservoir::FieldType::kString},
                {"merchantId", reservoir::FieldType::kString},
                {"amount", reservoir::FieldType::kDouble}};
  def.partitioners = {"cardId", "merchantId"};
  def.partitions_per_topic = 4;
  def.queries.push_back(
      query::ParseQuery("SELECT sum(amount), count(*) FROM payments "
                        "GROUP BY cardId OVER sliding 5 minutes")
          .value());
  def.pipelines.push_back(
      query::ParsePipeline("ADD PIPELINE big ON payments "
                           "| filter(amount > 100) | by(cardId) "
                           "| route_to_stream(alerts)")
          .value());
  return def;
}

TEST(MetaWireTest, StreamDefRoundTrip) {
  const engine::StreamDef def = SampleStreamDef();
  std::string encoded;
  engine::EncodeStreamDef(def, &encoded);

  Slice in(encoded);
  engine::StreamDef decoded;
  ASSERT_TRUE(engine::DecodeStreamDef(&in, &decoded).ok());
  EXPECT_TRUE(in.empty());
  EXPECT_EQ(decoded.name, def.name);
  ASSERT_EQ(decoded.fields.size(), def.fields.size());
  for (size_t i = 0; i < def.fields.size(); ++i) {
    EXPECT_EQ(decoded.fields[i].name, def.fields[i].name);
    EXPECT_EQ(decoded.fields[i].type, def.fields[i].type);
  }
  EXPECT_EQ(decoded.partitioners, def.partitioners);
  EXPECT_EQ(decoded.partitions_per_topic, def.partitions_per_topic);
  ASSERT_EQ(decoded.queries.size(), 1u);
  // Queries travel as raw statements and are re-parsed on decode.
  EXPECT_EQ(decoded.queries[0].raw, def.queries[0].raw);
  EXPECT_EQ(decoded.queries[0].stream, "payments");
  EXPECT_EQ(decoded.queries[0].group_by,
            std::vector<std::string>{"cardId"});
  // Pipelines travel the same way: raw statements, re-parsed on decode.
  ASSERT_EQ(decoded.pipelines.size(), 1u);
  EXPECT_EQ(decoded.pipelines[0].raw, def.pipelines[0].raw);
  EXPECT_EQ(decoded.pipelines[0].name, "big");
  ASSERT_EQ(decoded.pipelines[0].ops.size(), 3u);
  EXPECT_EQ(decoded.pipelines[0].ops.back().target, "alerts");
}

TEST(MetaWireTest, StreamDefTruncationsAreCorruptionNeverACrash) {
  std::string encoded;
  engine::EncodeStreamDef(SampleStreamDef(), &encoded);
  for (size_t len = 0; len < encoded.size(); ++len) {
    const std::string prefix = encoded.substr(0, len);
    Slice in(prefix);
    engine::StreamDef decoded;
    EXPECT_FALSE(engine::DecodeStreamDef(&in, &decoded).ok())
        << "prefix length " << len;
  }
}

TEST(MetaWireTest, AnnouncementAndViewRoundTrip) {
  NodeAnnouncement announcement;
  announcement.node_id = "w1";
  announcement.address = "10.0.0.7:7411";
  announcement.unit_ids = {"w1/u0", "w1/u1"};
  std::string encoded;
  EncodeNodeAnnouncement(announcement, &encoded);
  Slice in(encoded);
  NodeAnnouncement decoded_announcement;
  ASSERT_TRUE(DecodeNodeAnnouncement(&in, &decoded_announcement).ok());
  EXPECT_EQ(decoded_announcement.node_id, "w1");
  EXPECT_EQ(decoded_announcement.address, "10.0.0.7:7411");
  EXPECT_EQ(decoded_announcement.unit_ids, announcement.unit_ids);

  ClusterView view;
  view.generation = 42;
  view.nodes = {{"node0", "broker-local", 2, true},
                {"w1", "", 2, false}};
  view.streams = {"payments"};
  encoded.clear();
  EncodeClusterView(view, &encoded);
  in = Slice(encoded);
  ClusterView decoded_view;
  ASSERT_TRUE(DecodeClusterView(&in, &decoded_view).ok());
  EXPECT_EQ(decoded_view.generation, 42u);
  ASSERT_EQ(decoded_view.nodes.size(), 2u);
  EXPECT_EQ(decoded_view.nodes[0].node_id, "node0");
  EXPECT_TRUE(decoded_view.nodes[0].alive);
  EXPECT_FALSE(decoded_view.nodes[1].alive);
  EXPECT_EQ(decoded_view.streams, std::vector<std::string>{"payments"});

  // Truncations must never crash.
  for (size_t len = 0; len < encoded.size(); ++len) {
    const std::string prefix = encoded.substr(0, len);
    Slice truncated(prefix);
    ClusterView scratch;
    EXPECT_FALSE(DecodeClusterView(&truncated, &scratch).ok());
  }
}

// ----- Membership on simulated time ----------------------------------

class MembershipTest : public ::testing::Test {
 protected:
  static constexpr Micros kLease = 5 * kMicrosPerSecond;

  void SetUp() override {
    engine::ClusterOptions options;
    options.num_nodes = 0;  // Pure broker: all capacity is remote.
    options.base_dir = "/tmp/railgun-meta-membership";
    options.clock = &clock_;
    options.bus.delivery_delay = 0;
    // Only the metadata lease may fence anyone in this test.
    options.bus.session_timeout = kMicrosPerHour;
    cluster_ = std::make_unique<engine::Cluster>(options);
    ASSERT_TRUE(cluster_->Start().ok());

    MetadataServiceOptions meta_options;
    meta_options.lease_timeout = kLease;
    meta_options.run_ddl_service = false;  // Driven directly.
    meta_ = std::make_unique<MetadataService>(meta_options, cluster_.get());
    ASSERT_TRUE(meta_->Start().ok());
  }

  void TearDown() override {
    meta_->Stop();
    cluster_->Stop();
  }

  // Registers a fake worker unit in the active group, the way a
  // ProcessorUnit subscribing through a RemoteBus looks to the broker.
  void SubscribeUnit(const std::string& node, const std::string& unit) {
    ASSERT_TRUE(cluster_->bus()
                    ->Subscribe(unit, engine::kActiveGroup, {"pay.cardId"},
                                "node=" + node + ";unit=" + unit, nullptr,
                                {})
                    .ok());
  }

  Status Announce(const std::string& node,
                  const std::vector<std::string>& units) {
    NodeAnnouncement announcement;
    announcement.node_id = node;
    announcement.unit_ids = units;
    return meta_->Announce(announcement).status();
  }

  const NodeMember* FindNode(const ClusterView& view,
                             const std::string& node_id) {
    for (const auto& node : view.nodes) {
      if (node.node_id == node_id) return &node;
    }
    return nullptr;
  }

  SimulatedClock clock_;
  std::unique_ptr<engine::Cluster> cluster_;
  std::unique_ptr<MetadataService> meta_;
};

TEST_F(MembershipTest, AnnounceHeartbeatLeaveLifecycle) {
  const uint64_t generation0 = meta_->View().generation;
  ASSERT_TRUE(Announce("w1", {"w1/u0"}).ok());
  ClusterView view = meta_->View();
  EXPECT_GT(view.generation, generation0);
  const NodeMember* w1 = FindNode(view, "w1");
  ASSERT_NE(w1, nullptr);
  EXPECT_TRUE(w1->alive);
  EXPECT_EQ(w1->num_units, 1);

  // A second holder of the same id is rejected while the lease lives.
  EXPECT_TRUE(Announce("w1", {"w1/u0"}).IsAlreadyExists());
  // Heartbeats renew and report the generation; unknown nodes must
  // re-announce.
  EXPECT_TRUE(meta_->Heartbeat("w1").ok());
  EXPECT_TRUE(meta_->Heartbeat("ghost").status().IsNotFound());

  // Graceful leave: dead in the view, generation bumped, id reusable.
  const uint64_t generation1 = meta_->View().generation;
  ASSERT_TRUE(meta_->Leave("w1").ok());
  view = meta_->View();
  EXPECT_GT(view.generation, generation1);
  EXPECT_FALSE(FindNode(view, "w1")->alive);
  EXPECT_TRUE(meta_->Heartbeat("w1").status().IsNotFound());
  EXPECT_TRUE(Announce("w1", {"w1/u0"}).ok());
  EXPECT_TRUE(FindNode(meta_->View(), "w1")->alive);
}

TEST_F(MembershipTest, LeaseExpiresAfterExactlyTheTimeoutAndRebalances) {
  ASSERT_TRUE(cluster_->bus()->CreateTopic("pay.cardId", 4).ok());
  SubscribeUnit("wA", "wA/u0");
  SubscribeUnit("wB", "wB/u0");
  ASSERT_TRUE(Announce("wA", {"wA/u0"}).ok());
  ASSERT_TRUE(Announce("wB", {"wB/u0"}).ok());
  ASSERT_EQ(cluster_->bus()->AssignmentOf("wA/u0").size(), 2u);
  ASSERT_EQ(cluster_->bus()->AssignmentOf("wB/u0").size(), 2u);
  const uint64_t rebalances = cluster_->bus()->rebalance_count();

  // One tick before the lease boundary nothing expires...
  clock_.Advance(kLease - 1);
  ASSERT_TRUE(meta_->Heartbeat("wB").ok());  // B renews, A stays silent.
  EXPECT_EQ(meta_->CheckLeases(), 0);
  EXPECT_TRUE(FindNode(meta_->View(), "wA")->alive);

  // ...and exactly at it (virtual time), A's lease is gone: A is dead
  // in the view, its unit is fenced with one rebalance, and every task
  // lands on the surviving unit.
  clock_.Advance(1);
  EXPECT_EQ(meta_->CheckLeases(), 1);
  EXPECT_FALSE(FindNode(meta_->View(), "wA")->alive);
  EXPECT_TRUE(FindNode(meta_->View(), "wB")->alive);
  EXPECT_EQ(cluster_->bus()->rebalance_count(), rebalances + 1);
  EXPECT_TRUE(cluster_->bus()->AssignmentOf("wA/u0").empty());
  EXPECT_EQ(cluster_->bus()->AssignmentOf("wB/u0").size(), 4u);

  // The expired node cannot heartbeat its way back; re-announcing
  // works.
  EXPECT_TRUE(meta_->Heartbeat("wA").status().IsNotFound());
  EXPECT_TRUE(Announce("wA", {"wA/u0"}).ok());
  // CheckLeases is idempotent: no double expiry, no extra rebalance.
  EXPECT_EQ(meta_->CheckLeases(), 0);
  EXPECT_EQ(cluster_->bus()->rebalance_count(), rebalances + 1);
}

TEST_F(MembershipTest, DeadNodeRecordsArePrunedAfterRetention) {
  // Workers restart under fresh generated ids: tombstones must not
  // accumulate forever.
  ASSERT_TRUE(Announce("w1", {"w1/u0"}).ok());
  ASSERT_TRUE(meta_->Leave("w1").ok());
  EXPECT_NE(FindNode(meta_->View(), "w1"), nullptr);  // Visible tombstone.

  clock_.Advance(MetadataServiceOptions{}.dead_node_retention - 1);
  meta_->CheckLeases();
  EXPECT_NE(FindNode(meta_->View(), "w1"), nullptr);

  clock_.Advance(1);
  meta_->CheckLeases();
  EXPECT_EQ(FindNode(meta_->View(), "w1"), nullptr);
}

// ----- DDL absorption -------------------------------------------------

TEST(MetadataDdlTest, ExecuteDdlPopulatesTheSchemaRegistry) {
  engine::ClusterOptions options;
  options.num_nodes = 0;
  options.base_dir = "/tmp/railgun-meta-ddl";
  options.bus.delivery_delay = 0;
  engine::Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());
  MetadataServiceOptions meta_options;
  meta_options.run_ddl_service = false;
  MetadataService meta(meta_options, &cluster);

  EXPECT_TRUE(meta.GetStream("payments").status().IsNotFound());
  const uint64_t generation0 = meta.View().generation;
  ASSERT_TRUE(meta.ExecuteDdl("CREATE STREAM payments (cardId STRING, "
                              "amount DOUBLE) PARTITION BY cardId "
                              "PARTITIONS 2")
                  .ok());
  auto def = meta.GetStream("payments");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def.value().fields.size(), 2u);
  EXPECT_EQ(def.value().partitions_per_topic, 2);
  EXPECT_TRUE(def.value().queries.empty());
  EXPECT_GT(meta.View().generation, generation0);

  ASSERT_TRUE(meta.ExecuteDdl("ADD METRIC SELECT sum(amount) FROM "
                              "payments GROUP BY cardId OVER sliding "
                              "5 minutes")
                  .ok());
  EXPECT_EQ(meta.GetStream("payments").value().queries.size(), 1u);

  // Typed errors flow through; the registry stays consistent.
  EXPECT_TRUE(meta.ExecuteDdl("CREATE STREAM payments (cardId STRING) "
                              "PARTITION BY cardId")
                  .IsAlreadyExists());
  EXPECT_EQ(meta.GetStream("payments").value().fields.size(), 2u);
  EXPECT_TRUE(meta.ExecuteDdl("ADD METRIC SELECT count(*) FROM nope "
                              "GROUP BY x OVER sliding 1 minutes")
                  .IsNotFound());
  EXPECT_EQ(meta.ListStreamDefs().size(), 1u);
  EXPECT_EQ(meta.View().streams, std::vector<std::string>{"payments"});
}

}  // namespace
}  // namespace railgun::meta

// ----- Multi-process topology over loopback TCP ----------------------

namespace railgun::api {
namespace {

constexpr const char* kStreamDdl =
    "CREATE STREAM payments (cardId STRING, merchantId STRING, "
    "amount DOUBLE) PARTITION BY cardId, merchantId PARTITIONS 4";
constexpr const char* kMetricDdl =
    "ADD METRIC SELECT sum(amount), count(*) FROM payments "
    "GROUP BY cardId OVER sliding 30 minutes";

meta::BrokerOptions TestBrokerOptions(const std::string& name) {
  meta::BrokerOptions options;
  options.cluster.base_dir = "/tmp/railgun-meta-e2e-" + name;
  options.cluster.bus.delivery_delay = 0;
  return options;
}

meta::WorkerNodeOptions TestWorkerOptions(const std::string& address,
                                          const std::string& name,
                                          const std::string& id) {
  meta::WorkerNodeOptions options;
  options.broker_address = address;
  options.node_id = id;
  options.num_units = 2;
  options.base_dir = "/tmp/railgun-meta-e2e-" + name + "-" + id;
  options.heartbeat_period = 50 * kMicrosPerMilli;
  return options;
}

double CountFor(Client& client, double minute) {
  const EventResult result = client.SubmitSync(
      "payments", Row()
                      .At(static_cast<Micros>(minute * kMicrosPerMinute))
                      .Set("cardId", "card1")
                      .Set("merchantId", "storeA")
                      .Set("amount", 1.0));
  EXPECT_TRUE(result.ok()) << result.status.ToString();
  const MetricValue* count = result.Find("count(*)", "card1");
  if (count == nullptr) return -1;
  return count->value.ToNumber();
}

TEST(MultiProcessTest, ClientSubmitsToAStreamAnotherClientCreated) {
  meta::Broker broker(TestBrokerOptions("foreign"));
  ASSERT_TRUE(broker.Start().ok());
  meta::WorkerNode worker(
      TestWorkerOptions(broker.address(), "foreign", "w1"));
  ASSERT_TRUE(worker.Start().ok());

  ClientOptions options;
  options.remote_address = broker.address();
  {
    Client creator(options);
    ASSERT_TRUE(creator.Start().ok());
    ASSERT_TRUE(creator.CreateStream(kStreamDdl).ok());
    ASSERT_TRUE(creator.Query(kMetricDdl).ok());
    EXPECT_DOUBLE_EQ(CountFor(creator, 1), 1.0);
    creator.Stop();
  }

  // A fresh client that never saw the DDL: the schema must come from
  // the metadata service for binding to even work, and its counts
  // include the creator's acked event. (This also exercises per-client
  // event-id salting: without it the foreign client's first auto-minted
  // id collides with the creator's and the reservoir dedups the event.)
  Client foreign(options);
  ASSERT_TRUE(foreign.Start().ok());
  EXPECT_DOUBLE_EQ(CountFor(foreign, 2), 2.0);

  // Foreign streams show up in listings and accept new metrics.
  const std::vector<std::string> streams = foreign.ListStreams();
  EXPECT_NE(std::find(streams.begin(), streams.end(), "payments"),
            streams.end());
  EXPECT_TRUE(foreign
                  .Query("ADD METRIC SELECT avg(amount) FROM payments "
                         "GROUP BY merchantId OVER sliding 30 minutes")
                  .ok());

  // Admin answers topology from the metadata view: worker w1 is there.
  auto view = foreign.admin().FetchView();
  ASSERT_TRUE(view.ok());
  bool saw_worker = false;
  for (const auto& node : view.value().nodes) {
    if (node.node_id == "w1") {
      saw_worker = true;
      EXPECT_TRUE(node.alive);
      EXPECT_EQ(node.num_units, 2);
    }
  }
  EXPECT_TRUE(saw_worker);
  EXPECT_GE(foreign.admin().num_nodes(), 1);

  // Submitting to a stream nobody declared stays a typed NotFound.
  EventResult missing = foreign.SubmitSync(
      "ghost", Row().Set("cardId", "c").Set("amount", 1.0));
  EXPECT_TRUE(missing.status.IsNotFound());

  foreign.Stop();
  worker.Stop();
  broker.Stop();
}

TEST(MultiProcessTest, GracefulNodeLeaveRebalancesWithoutLosingAckedEvents) {
  meta::Broker broker(TestBrokerOptions("leave"));
  ASSERT_TRUE(broker.Start().ok());
  meta::WorkerNode w1(TestWorkerOptions(broker.address(), "leave", "w1"));
  meta::WorkerNode w2(TestWorkerOptions(broker.address(), "leave", "w2"));
  ASSERT_TRUE(w1.Start().ok());
  ASSERT_TRUE(w2.Start().ok());

  ClientOptions options;
  options.remote_address = broker.address();
  Client client(options);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kStreamDdl).ok());
  ASSERT_TRUE(client.Query(kMetricDdl).ok());

  for (int i = 1; i <= 5; ++i) {
    EXPECT_DOUBLE_EQ(CountFor(client, i), static_cast<double>(i));
  }

  // Graceful departure: w2 leaves the view and its units unsubscribe
  // cleanly; its tasks rebalance onto w1, which rebuilds their state by
  // replaying the partition logs — no acked event may disappear.
  const uint64_t rebalances = broker.cluster()->bus()->rebalance_count();
  w2.Stop();
  EXPECT_GT(broker.cluster()->bus()->rebalance_count(), rebalances);
  auto view = broker.metadata()->View();
  for (const auto& node : view.nodes) {
    if (node.node_id == "w2") {
      EXPECT_FALSE(node.alive);
    }
    if (node.node_id == "w1") {
      EXPECT_TRUE(node.alive);
    }
  }

  for (int i = 6; i <= 8; ++i) {
    EXPECT_DOUBLE_EQ(CountFor(client, i), static_cast<double>(i));
  }

  client.Stop();
  w1.Stop();
  broker.Stop();
}

}  // namespace
}  // namespace railgun::api
