// Tests for the full LSM store: put/get/delete, column families, flush,
// compaction, recovery, checkpoints and iterators.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "storage/db.h"

namespace railgun::storage {
namespace {

class DBTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/railgun_db_test";
    ASSERT_TRUE(DestroyDB(dir_).ok());
    options_.write_buffer_size = 32 * 1024;  // Flush often.
    options_.max_bytes_for_level_base = 128 * 1024;
    options_.target_file_size = 32 * 1024;
    Open();
  }

  void Open() { ASSERT_TRUE(DB::Open(options_, dir_, &db_).ok()); }
  void Reopen() {
    db_.reset();
    Open();
  }

  std::string Get(uint32_t cf, const std::string& key) {
    std::string value;
    Status s = db_->Get(cf, key, &value);
    if (s.IsNotFound()) return "NOT_FOUND";
    if (!s.ok()) return "ERROR:" + s.ToString();
    return value;
  }

  DBOptions options_;
  std::string dir_;
  std::unique_ptr<DB> db_;
};

TEST_F(DBTest, PutGetDelete) {
  ASSERT_TRUE(db_->Put(0, "key", "value").ok());
  EXPECT_EQ(Get(0, "key"), "value");
  ASSERT_TRUE(db_->Put(0, "key", "value2").ok());
  EXPECT_EQ(Get(0, "key"), "value2");
  ASSERT_TRUE(db_->Delete(0, "key").ok());
  EXPECT_EQ(Get(0, "key"), "NOT_FOUND");
  EXPECT_EQ(Get(0, "never"), "NOT_FOUND");
}

TEST_F(DBTest, EmptyValueAndBinaryKeys) {
  ASSERT_TRUE(db_->Put(0, "empty", "").ok());
  EXPECT_EQ(Get(0, "empty"), "");
  const std::string binary_key("\x00\x01\xff\x7f", 4);
  ASSERT_TRUE(db_->Put(0, binary_key, "bin").ok());
  EXPECT_EQ(Get(0, binary_key), "bin");
}

TEST_F(DBTest, ColumnFamiliesAreIsolated) {
  auto cf_or = db_->CreateColumnFamily("aux");
  ASSERT_TRUE(cf_or.ok());
  const uint32_t aux = cf_or.value();

  ASSERT_TRUE(db_->Put(0, "k", "default").ok());
  ASSERT_TRUE(db_->Put(aux, "k", "aux").ok());
  EXPECT_EQ(Get(0, "k"), "default");
  EXPECT_EQ(Get(aux, "k"), "aux");
  ASSERT_TRUE(db_->Delete(aux, "k").ok());
  EXPECT_EQ(Get(0, "k"), "default");
  EXPECT_EQ(Get(aux, "k"), "NOT_FOUND");

  EXPECT_TRUE(db_->CreateColumnFamily("aux").status().IsAlreadyExists());
  EXPECT_TRUE(db_->FindColumnFamily("aux").ok());
  EXPECT_TRUE(db_->FindColumnFamily("nope").status().IsNotFound());
}

TEST_F(DBTest, WriteBatchIsAtomicallyVisible) {
  WriteBatch batch;
  batch.Put(0, "a", "1");
  batch.Put(0, "b", "2");
  batch.Delete(0, "a");
  ASSERT_TRUE(db_->Write(&batch).ok());
  EXPECT_EQ(Get(0, "a"), "NOT_FOUND");
  EXPECT_EQ(Get(0, "b"), "2");
}

TEST_F(DBTest, SurvivesFlushAndCompaction) {
  Random64 rng(11);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 30000; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "key%06llu",
             static_cast<unsigned long long>(rng.Uniform(3000)));
    if (rng.OneIn(10)) {
      ASSERT_TRUE(db_->Delete(0, key).ok());
      model.erase(key);
    } else {
      const std::string value = "v" + std::to_string(i);
      ASSERT_TRUE(db_->Put(0, key, value).ok());
      model[key] = value;
    }
  }
  // Verify every model key and a sample of absent keys.
  for (const auto& [key, value] : model) {
    ASSERT_EQ(Get(0, key), value) << key;
  }
  EXPECT_EQ(Get(0, "key999999"), "NOT_FOUND");

  // Compaction actually happened (data beyond L0).
  auto stats = db_->GetLevelStats(0);
  int total_files = 0;
  for (int level = 1; level < static_cast<int>(stats.size()); ++level) {
    total_files += stats[level].num_files;
  }
  EXPECT_GT(total_files, 0);
}

TEST_F(DBTest, RecoversFromWalAfterReopen) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(db_->Put(0, "k" + std::to_string(i),
                         "v" + std::to_string(i)).ok());
  }
  Reopen();  // Destructor closes cleanly; WAL replays buffered tail.
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(Get(0, "k" + std::to_string(i)), "v" + std::to_string(i));
  }
}

TEST_F(DBTest, RecoversColumnFamiliesAfterReopen) {
  auto cf_or = db_->CreateColumnFamily("metrics");
  ASSERT_TRUE(cf_or.ok());
  const uint32_t cf = cf_or.value();
  ASSERT_TRUE(db_->Put(cf, "m1", "42").ok());
  ASSERT_TRUE(db_->Flush().ok());
  Reopen();
  auto found = db_->FindColumnFamily("metrics");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), cf);
  EXPECT_EQ(Get(cf, "m1"), "42");
}

TEST_F(DBTest, CheckpointIsConsistentSnapshot) {
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db_->Put(0, "k" + std::to_string(i), "pre").ok());
  }
  const std::string ckpt_dir = dir_ + "_ckpt";
  ASSERT_TRUE(db_->Checkpoint(ckpt_dir).ok());

  // Writes after the checkpoint must not appear in it.
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(db_->Put(0, "k" + std::to_string(i), "post").ok());
  }

  std::unique_ptr<DB> snapshot;
  ASSERT_TRUE(DB::Open(options_, ckpt_dir, &snapshot).ok());
  std::string value;
  ASSERT_TRUE(snapshot->Get(0, "k0", &value).ok());
  EXPECT_EQ(value, "pre");
  ASSERT_TRUE(db_->Get(0, "k0", &value).ok());
  EXPECT_EQ(value, "post");
  snapshot.reset();
  ASSERT_TRUE(DestroyDB(ckpt_dir).ok());
}

TEST_F(DBTest, IteratorSkipsTombstonesAndOldVersions) {
  ASSERT_TRUE(db_->Put(0, "a", "1").ok());
  ASSERT_TRUE(db_->Put(0, "b", "old").ok());
  ASSERT_TRUE(db_->Flush().ok());
  ASSERT_TRUE(db_->Put(0, "b", "new").ok());
  ASSERT_TRUE(db_->Put(0, "c", "3").ok());
  ASSERT_TRUE(db_->Delete(0, "a").ok());

  auto iter = db_->NewIterator(0);
  std::string scanned;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    scanned += iter->key().ToString() + "=" + iter->value().ToString() + ";";
  }
  EXPECT_EQ(scanned, "b=new;c=3;");
}

TEST_F(DBTest, IteratorSeekPositionsAtLowerBound) {
  for (int i = 0; i < 100; i += 2) {
    char key[16];
    snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(db_->Put(0, key, std::to_string(i)).ok());
  }
  auto iter = db_->NewIterator(0);
  iter->Seek("k051");  // Odd: between k050 and k052.
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k052");
  iter->Seek("k050");
  ASSERT_TRUE(iter->Valid());
  EXPECT_EQ(iter->key().ToString(), "k050");
  iter->Seek("k999");
  EXPECT_FALSE(iter->Valid());
}

TEST_F(DBTest, LargeValuesRoundTrip) {
  const std::string big(512 * 1024, 'B');
  ASSERT_TRUE(db_->Put(0, "big", big).ok());
  ASSERT_TRUE(db_->Flush().ok());
  EXPECT_EQ(Get(0, "big"), big);
}

TEST_F(DBTest, ManyColumnFamiliesUnderChurn) {
  std::vector<uint32_t> cfs;
  for (int i = 0; i < 8; ++i) {
    auto cf = db_->CreateColumnFamily("cf" + std::to_string(i));
    ASSERT_TRUE(cf.ok());
    cfs.push_back(cf.value());
  }
  for (int round = 0; round < 2000; ++round) {
    const uint32_t cf = cfs[static_cast<size_t>(round) % cfs.size()];
    ASSERT_TRUE(db_->Put(cf, "k" + std::to_string(round % 50),
                         std::to_string(round)).ok());
  }
  Reopen();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(db_->FindColumnFamily("cf" + std::to_string(i)).ok());
  }
}

TEST(DBOpenTest, MissingDbFailsWithoutCreateIfMissing) {
  DBOptions options;
  options.create_if_missing = false;
  std::unique_ptr<DB> db;
  EXPECT_TRUE(
      DB::Open(options, "/tmp/railgun_db_never_created", &db).IsNotFound());
}

}  // namespace
}  // namespace railgun::storage
