// Tests for the distributed-tracing substrate: trace-context trailer
// round-trip and robustness (truncation and bit flips degrade to "no
// context", never an error), span recording semantics (parent linkage,
// sampling, slow-request force recording on a simulated clock),
// ring-overflow drop accounting, Chrome-trace JSON export shape, and
// the registry integration (per-stage histograms + trace.* probes).
#include "trace/tracer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/logging.h"
#include "introspect/registry.h"
#include "trace/trace_context.h"

namespace railgun::trace {
namespace {

TraceContext SampleContext() {
  TraceContext ctx;
  ctx.trace_hi = 0x0123456789abcdefull;
  ctx.trace_lo = 0xfedcba9876543210ull;
  ctx.span_id = 0xdeadbeefcafef00dull;
  ctx.flags = TraceContext::kSampledFlag;
  return ctx;
}

// The global tracer is process-wide state; every test starts and ends
// from a clean slate so ordering between suites cannot matter.
class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracer::Global()->ResetForTest(); }
  void TearDown() override { Tracer::Global()->ResetForTest(); }
};

TEST(TraceContextTest, TrailerRoundTrip) {
  const TraceContext ctx = SampleContext();
  std::string payload = "payload-front-matter";
  AppendTraceTrailer(ctx, &payload);
  ASSERT_EQ(payload.size(), 20 + kTraceTrailerSize);

  // The decoder consumed the front matter; the trailer is the rest.
  const Slice rest(payload.data() + 20, payload.size() - 20);
  const TraceContext parsed = ParseTraceTrailer(rest);
  EXPECT_TRUE(parsed.valid());
  EXPECT_TRUE(parsed.sampled());
  EXPECT_EQ(parsed.trace_hi, ctx.trace_hi);
  EXPECT_EQ(parsed.trace_lo, ctx.trace_lo);
  EXPECT_EQ(parsed.span_id, ctx.span_id);
}

TEST(TraceContextTest, InvalidContextAppendsNothing) {
  std::string payload = "untouched";
  AppendTraceTrailer(TraceContext(), &payload);
  EXPECT_EQ(payload, "untouched");
  EXPECT_FALSE(ParseTraceTrailer(Slice(payload)).valid());
}

TEST(TraceContextTest, UnknownFutureFieldsBeforeTheTrailerAreTolerated) {
  // A newer peer may insert fields between the known payload and the
  // trailer; the parser anchors on the *last* kTraceTrailerSize bytes.
  std::string rest = "future-extension-bytes";
  AppendTraceTrailer(SampleContext(), &rest);
  const TraceContext parsed = ParseTraceTrailer(Slice(rest));
  EXPECT_TRUE(parsed.valid());
  EXPECT_EQ(parsed.span_id, SampleContext().span_id);
}

TEST(TraceContextTest, EveryTruncationYieldsInvalidContextNeverAnError) {
  std::string trailer;
  AppendTraceTrailer(SampleContext(), &trailer);
  ASSERT_EQ(trailer.size(), kTraceTrailerSize);
  for (size_t len = 0; len < trailer.size(); ++len) {
    const std::string prefix = trailer.substr(0, len);
    EXPECT_FALSE(ParseTraceTrailer(Slice(prefix)).valid())
        << "prefix length " << len;
  }
}

TEST(TraceContextTest, EveryBitFlipFailsVerificationToUnsampled) {
  std::string trailer;
  AppendTraceTrailer(SampleContext(), &trailer);
  for (size_t byte = 0; byte < trailer.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutated = trailer;
      mutated[byte] = static_cast<char>(mutated[byte] ^ (1 << bit));
      const TraceContext parsed = ParseTraceTrailer(Slice(mutated));
      // Magic, id, flag or checksum corruption: all collapse to an
      // invalid (hence unsampled) context.
      EXPECT_FALSE(parsed.valid()) << "byte " << byte << " bit " << bit;
    }
  }
}

TEST(TraceContextTest, ScopedContextNestsAndRestores) {
  EXPECT_FALSE(CurrentTraceContext().valid());
  {
    ScopedTraceContext outer(SampleContext());
    EXPECT_EQ(CurrentTraceContext().span_id, SampleContext().span_id);
    {
      TraceContext inner_ctx = SampleContext();
      inner_ctx.span_id = 42;
      ScopedTraceContext inner(inner_ctx);
      EXPECT_EQ(CurrentTraceContext().span_id, 42u);
    }
    EXPECT_EQ(CurrentTraceContext().span_id, SampleContext().span_id);
  }
  EXPECT_FALSE(CurrentTraceContext().valid());
}

TEST_F(TracerTest, DisabledTracerIsInert) {
  Tracer* tracer = Tracer::Global();
  EXPECT_FALSE(tracer->enabled());
  EXPECT_EQ(tracer->NowMicros(), 0);
  EXPECT_FALSE(tracer->Mint().valid());
  const TraceContext ctx = SampleContext();
  const TraceContext out = tracer->Record(Stage::kUnitProcess, ctx, 0, 10);
  EXPECT_EQ(out.span_id, ctx.span_id);  // Unchanged: nothing recorded.
  EXPECT_EQ(tracer->spans_recorded(), 0u);
}

TEST_F(TracerTest, MintSamplesOneInN) {
  Tracer* tracer = Tracer::Global();
  TracerOptions options;
  options.sample_every = 4;
  tracer->Enable(options);
  int sampled = 0;
  for (int i = 0; i < 16; ++i) {
    const TraceContext ctx = tracer->Mint();
    EXPECT_TRUE(ctx.valid());
    if (ctx.sampled()) ++sampled;
  }
  EXPECT_EQ(sampled, 4);
}

TEST_F(TracerTest, RecordChainsParentLinkage) {
  Tracer* tracer = Tracer::Global();
  TracerOptions options;
  options.sample_every = 1;
  tracer->Enable(options);

  const TraceContext root = tracer->Mint();
  ASSERT_TRUE(root.sampled());
  const TraceContext after_enqueue =
      tracer->Record(Stage::kFrontendEnqueue, root, 10, 20);
  EXPECT_NE(after_enqueue.span_id, root.span_id);
  const TraceContext after_process =
      tracer->Record(Stage::kUnitProcess, after_enqueue, 30, 45);
  tracer->RecordRoot(Stage::kClientSubmit, root, 0, 50);

  ASSERT_EQ(tracer->Drain(), 3u);
  const std::string json = tracer->ExportChromeJson();
  EXPECT_NE(json.find("frontend.enqueue"), std::string::npos);
  EXPECT_NE(json.find("unit.process"), std::string::npos);
  EXPECT_NE(json.find("client.submit"), std::string::npos);

  // The chain: root (parent 0) <- enqueue <- process.
  char expect[64];
  std::snprintf(expect, sizeof(expect), "\"parent_span_id\":\"%llx\"",
                static_cast<unsigned long long>(after_enqueue.span_id));
  EXPECT_NE(json.find(expect), std::string::npos);
  std::snprintf(expect, sizeof(expect), "\"span_id\":\"%llx\"",
                static_cast<unsigned long long>(after_process.span_id));
  EXPECT_NE(json.find(expect), std::string::npos);
  EXPECT_NE(json.find("\"parent_span_id\":\"0\""), std::string::npos);
}

TEST_F(TracerTest, UnsampledContextAdvancesNothingAndRecordsNothing) {
  Tracer* tracer = Tracer::Global();
  TracerOptions options;
  options.sample_every = 1u << 30;
  tracer->Enable(options);
  (void)tracer->Mint();                        // Mint 0: sampled.
  const TraceContext ctx = tracer->Mint();     // Mint 1: not sampled.
  ASSERT_FALSE(ctx.sampled());
  const TraceContext out = tracer->Record(Stage::kUnitProcess, ctx, 0, 10);
  EXPECT_EQ(out.span_id, ctx.span_id);
  EXPECT_EQ(tracer->spans_recorded(), 0u);
  EXPECT_EQ(tracer->Drain(), 0u);
}

TEST_F(TracerTest, SlowRequestForceSamplingOnSimulatedClock) {
  SimulatedClock clock(1000);
  Tracer* tracer = Tracer::Global();
  TracerOptions options;
  options.sample_every = 1u << 30;
  options.slow_threshold_us = 500;
  options.clock = &clock;
  tracer->Enable(options);

  (void)tracer->Mint();                        // Burn the sampled mint.
  const TraceContext ctx = tracer->Mint();
  ASSERT_FALSE(ctx.sampled());

  const Micros start = tracer->NowMicros();
  EXPECT_EQ(start, 1000);
  clock.Advance(499);
  EXPECT_FALSE(tracer->SlowExceeded(tracer->NowMicros() - start));
  clock.Advance(1);
  const Micros end = tracer->NowMicros();
  ASSERT_TRUE(tracer->SlowExceeded(end - start));

  // The head sampler said no, but the slow path records the root anyway
  // and counts it.
  tracer->RecordRoot(Stage::kClientSubmit, ctx, start, end, /*force=*/true);
  EXPECT_EQ(tracer->slow_requests(), 1u);
  EXPECT_EQ(tracer->spans_recorded(), 1u);
  ASSERT_EQ(tracer->Drain(), 1u);
  const std::string json = tracer->ExportChromeJson();
  EXPECT_NE(json.find("\"forced\":true"), std::string::npos);
}

TEST_F(TracerTest, FullRingDropsSpansAndCountsThemWithoutBlocking) {
  Tracer* tracer = Tracer::Global();
  TracerOptions options;
  options.sample_every = 1;
  tracer->Enable(options);
  const TraceContext ctx = tracer->Mint();
  ASSERT_TRUE(ctx.sampled());

  const size_t overflow = 100;
  for (size_t i = 0; i < Tracer::kRingCapacity + overflow; ++i) {
    tracer->Record(Stage::kUnitProcess, ctx, 0, 1);
  }
  EXPECT_EQ(tracer->spans_recorded(), Tracer::kRingCapacity);
  EXPECT_EQ(tracer->spans_dropped(), overflow);

  // Draining frees the ring; recording resumes without loss.
  EXPECT_EQ(tracer->Drain(), Tracer::kRingCapacity);
  tracer->Record(Stage::kUnitProcess, ctx, 0, 1);
  EXPECT_EQ(tracer->spans_dropped(), overflow);
  EXPECT_EQ(tracer->Drain(), 1u);
}

TEST_F(TracerTest, DrainCollectsSpansFromEveryThread) {
  Tracer* tracer = Tracer::Global();
  TracerOptions options;
  options.sample_every = 1;
  tracer->Enable(options);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([tracer] {
      const TraceContext ctx = tracer->Mint();
      for (int i = 0; i < kPerThread; ++i) {
        tracer->Record(Stage::kBrokerAppend, ctx, i, i + 1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(tracer->Drain(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(tracer->collected_size(),
            static_cast<size_t>(kThreads * kPerThread));
  tracer->Clear();
  EXPECT_EQ(tracer->collected_size(), 0u);
}

TEST_F(TracerTest, ExportedJsonHasChromeTraceShape) {
  Tracer* tracer = Tracer::Global();
  TracerOptions options;
  options.sample_every = 1;
  tracer->Enable(options);
  const TraceContext ctx = tracer->Mint();
  tracer->Record(Stage::kReplyPublish, ctx, 100, 250);

  const std::string json = tracer->ExportChromeJson();
  EXPECT_EQ(json.rfind("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[", 0),
            0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"reply.publish\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":150"), std::string::npos);
  EXPECT_EQ(json.substr(json.size() - 3), "]}\n");
  // Braces balance (no nesting surprises from snprintf truncation).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(TracerTest, RegistryGetsStageHistogramsAndProbes) {
  introspect::Registry registry;
  Tracer* tracer = Tracer::Global();
  TracerOptions options;
  options.sample_every = 1;
  tracer->Enable(options);
  tracer->AttachRegistry(&registry);

  const TraceContext ctx = tracer->Mint();
  tracer->Record(Stage::kUnitProcess, ctx, 0, 40);
  // Unsampled and invalid contexts still feed the histogram: the
  // latency population is complete even at 1-in-N span sampling.
  tracer->Record(Stage::kUnitProcess, TraceContext(), 0, 80);

  bool saw_hist = false;
  bool saw_recorded = false;
  for (const auto& sample : registry.Snapshot()) {
    if (sample.name == "trace.stage.unit.process_us.count") {
      saw_hist = true;
      EXPECT_DOUBLE_EQ(sample.value, 2.0);
    }
    if (sample.name == "trace.spans_recorded") {
      saw_recorded = true;
      EXPECT_DOUBLE_EQ(sample.value, 1.0);
    }
  }
  EXPECT_TRUE(saw_hist);
  EXPECT_TRUE(saw_recorded);
  tracer->DetachRegistry(&registry);
}

TEST_F(TracerTest, LogLinesInsideAScopeCarryTheTraceId) {
  // The scoped context stamps the logging layer's thread trace id so a
  // RAILGUN_LOG line emitted mid-request can be joined to its trace.
  const TraceContext ctx = SampleContext();
  uint64_t hi = 0;
  uint64_t lo = 0;
  {
    ScopedTraceContext scope(ctx);
    GetLogTraceId(&hi, &lo);
    EXPECT_EQ(hi, ctx.trace_hi);
    EXPECT_EQ(lo, ctx.trace_lo);
  }
  GetLogTraceId(&hi, &lo);
  EXPECT_EQ(hi | lo, 0u);
}

}  // namespace
}  // namespace railgun::trace
