// End-to-end integration tests: full cluster (front-end -> bus ->
// processor units -> reply), aggregation accuracy against a reference
// model, node failure + recovery without losing accuracy, and elastic
// scale-out.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>

#include "engine/cluster.h"

namespace railgun::engine {
namespace {

using reservoir::Event;
using reservoir::FieldType;
using reservoir::FieldValue;

StreamDef PaymentsStream(int partitions) {
  StreamDef stream;
  stream.name = "payments";
  stream.fields = {{"cardId", FieldType::kString},
                   {"merchantId", FieldType::kString},
                   {"amount", FieldType::kDouble}};
  stream.partitioners = {"cardId"};
  stream.partitions_per_topic = partitions;
  auto q = query::ParseQuery(
      "SELECT sum(amount), count(*) FROM payments GROUP BY cardId "
      "OVER sliding 5 minutes");
  stream.queries = {q.value()};
  return stream;
}

Event PaymentEvent(Micros ts, uint64_t id, const std::string& card,
                   double amount) {
  Event e;
  e.timestamp = ts;
  e.id = id;
  e.values = {FieldValue(card), FieldValue("m"), FieldValue(amount)};
  return e;
}

// Reference: exact sliding-window sum/count per card.
class ReferenceModel {
 public:
  explicit ReferenceModel(Micros window) : window_(window) {}

  std::pair<double, int64_t> Apply(const std::string& card, Micros ts,
                                   double amount) {
    auto& events = per_card_[card];
    events.push_back({ts, amount});
    double sum = 0;
    int64_t count = 0;
    for (const auto& [t, a] : events) {
      if (t >= ts - window_ /* inclusive boundary */) {
        sum += a;
        ++count;
      }
    }
    return {sum, count};
  }

 private:
  Micros window_;
  std::map<std::string, std::vector<std::pair<Micros, double>>> per_card_;
};

ClusterOptions FastClusterOptions(const std::string& dir, int nodes,
                                  int replication) {
  ClusterOptions options;
  options.num_nodes = nodes;
  options.replication_factor = replication;
  options.node.num_processor_units = 2;
  options.node.unit.task.reservoir.chunk_target_bytes = 4096;
  options.node.unit.task.checkpoint_interval_events = 500;
  options.node.unit.poll_wait = 2 * kMicrosPerMilli;
  options.bus.delivery_delay = 50;
  options.base_dir = dir;
  return options;
}

TEST(IntegrationTest, EndToEndAccuracyMatchesReferenceModel) {
  Cluster cluster(
      FastClusterOptions("/tmp/railgun_int_accuracy", 2, 1));
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.RegisterStream(PaymentsStream(4)).ok());

  ReferenceModel reference(5 * kMicrosPerMinute);

  struct Outcome {
    double sum;
    int64_t count;
    double expected_sum;
    int64_t expected_count;
  };
  std::mutex mu;
  std::vector<Outcome> outcomes;
  std::atomic<int> replies{0};

  const int n = 400;
  for (int i = 0; i < n; ++i) {
    const std::string card = "card" + std::to_string(i % 13);
    const Micros ts = static_cast<Micros>(i) * 3 * kMicrosPerSecond;
    const double amount = 1.0 + (i % 10);
    const auto [expected_sum, expected_count] =
        reference.Apply(card, ts, amount);

    ASSERT_TRUE(
        cluster.node(i % 2)
            ->frontend()
            ->Submit("payments", PaymentEvent(ts, static_cast<uint64_t>(i + 1),
                                              card, amount),
                     [&, expected_sum, expected_count](
                         Status s, const std::vector<MetricReply>& results) {
                       ASSERT_TRUE(s.ok());
                       Outcome outcome{0, 0, expected_sum, expected_count};
                       for (const auto& r : results) {
                         if (r.metric_name.rfind("sum", 0) == 0) {
                           outcome.sum = r.value.ToNumber();
                         } else if (r.metric_name.rfind("count", 0) == 0) {
                           outcome.count =
                               static_cast<int64_t>(r.value.ToNumber());
                         }
                       }
                       std::lock_guard<std::mutex> lock(mu);
                       outcomes.push_back(outcome);
                       ++replies;
                     })
            .ok());
    // Paced injection so ordering is deterministic per card partition.
    MonotonicClock::Default()->SleepMicros(1500);
  }

  for (int waited = 0; waited < 2000 && replies < n; ++waited) {
    MonotonicClock::Default()->SleepMicros(10000);
  }
  ASSERT_EQ(replies.load(), n);

  std::lock_guard<std::mutex> lock(mu);
  int mismatches = 0;
  for (const auto& o : outcomes) {
    if (o.count != o.expected_count ||
        std::abs(o.sum - o.expected_sum) > 1e-6) {
      ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0)
      << mismatches << " of " << outcomes.size()
      << " replies diverged from the exact sliding-window reference";
  cluster.Stop();
}

TEST(IntegrationTest, NodeFailureRecoversWithoutLosingAccuracy) {
  Cluster cluster(
      FastClusterOptions("/tmp/railgun_int_failover", 3, 2));
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.RegisterStream(PaymentsStream(6)).ok());

  std::atomic<int> replies{0};
  std::mutex mu;
  std::map<std::string, std::pair<double, int64_t>> last_per_card;

  auto submit = [&](int node, int i) {
    const std::string card = "card" + std::to_string(i % 7);
    const Micros ts = static_cast<Micros>(i) * kMicrosPerSecond;
    ASSERT_TRUE(
        cluster.node(node)
            ->frontend()
            ->Submit("payments",
                     PaymentEvent(ts, static_cast<uint64_t>(i + 1), card, 1.0),
                     [&, card](Status, const std::vector<MetricReply>& rs) {
                       std::lock_guard<std::mutex> lock(mu);
                       for (const auto& r : rs) {
                         if (r.metric_name.rfind("count", 0) == 0) {
                           last_per_card[card].second =
                               static_cast<int64_t>(r.value.ToNumber());
                         } else if (r.metric_name.rfind("sum", 0) == 0) {
                           last_per_card[card].first = r.value.ToNumber();
                         }
                       }
                       ++replies;
                     })
            .ok());
    MonotonicClock::Default()->SleepMicros(2000);
  };

  for (int i = 0; i < 150; ++i) submit(0, i);
  ASSERT_TRUE(cluster.KillNode(2).ok());
  for (int i = 150; i < 300; ++i) submit(0, i);

  for (int waited = 0; waited < 3000 && replies < 300; ++waited) {
    MonotonicClock::Default()->SleepMicros(10000);
  }
  EXPECT_EQ(replies.load(), 300);

  // Every event after the kill still got exact values: with a 1-second
  // cadence round-robin over 7 cards, the 5-minute window holds all of
  // a card's events until i ~ 300 (43 per card) — so counts must equal
  // the number of that card's submissions.
  std::lock_guard<std::mutex> lock(mu);
  for (int c = 0; c < 7; ++c) {
    const std::string card = "card" + std::to_string(c);
    const int64_t expected = 300 / 7 + (c < 300 % 7 ? 1 : 0);
    EXPECT_EQ(last_per_card[card].second, expected) << card;
  }
  const auto stats = cluster.TotalStats();
  EXPECT_GT(stats.recoveries + stats.fresh_tasks, 0u);
  cluster.Stop();
}

TEST(IntegrationTest, ElasticScaleOutRebalancesTasks) {
  Cluster cluster(FastClusterOptions("/tmp/railgun_int_elastic", 1, 1));
  ASSERT_TRUE(cluster.Start().ok());
  ASSERT_TRUE(cluster.RegisterStream(PaymentsStream(8)).ok());

  std::atomic<int> replies{0};
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(cluster.node(0)
                    ->frontend()
                    ->Submit("payments",
                             PaymentEvent(i * kMicrosPerSecond,
                                          static_cast<uint64_t>(i + 1),
                                          "card" + std::to_string(i % 5), 1.0),
                             [&](Status, const std::vector<MetricReply>&) {
                               ++replies;
                             })
                    .ok());
    MonotonicClock::Default()->SleepMicros(2000);
  }

  auto node_or = cluster.AddNode();
  ASSERT_TRUE(node_or.ok());

  for (int i = 50; i < 150; ++i) {
    ASSERT_TRUE(cluster.node(0)
                    ->frontend()
                    ->Submit("payments",
                             PaymentEvent(i * kMicrosPerSecond,
                                          static_cast<uint64_t>(i + 1),
                                          "card" + std::to_string(i % 5), 1.0),
                             [&](Status, const std::vector<MetricReply>&) {
                               ++replies;
                             })
                    .ok());
    MonotonicClock::Default()->SleepMicros(2000);
  }
  for (int waited = 0; waited < 2000 && replies < 150; ++waited) {
    MonotonicClock::Default()->SleepMicros(10000);
  }
  EXPECT_EQ(replies.load(), 150);

  // The new node's units actually picked up work.
  int new_node_tasks = 0;
  RailgunNode* added = node_or.value();
  for (int u = 0; u < added->num_units(); ++u) {
    new_node_tasks +=
        static_cast<int>(added->unit(u)->active_tasks().size());
  }
  EXPECT_GT(new_node_tasks, 0);
  cluster.Stop();
}

TEST(IntegrationTest, MultiplePartitionersRouteToBothTopics) {
  ClusterOptions options =
      FastClusterOptions("/tmp/railgun_int_partitioners", 1, 1);
  Cluster cluster(options);
  ASSERT_TRUE(cluster.Start().ok());

  StreamDef stream = PaymentsStream(2);
  stream.partitioners = {"cardId", "merchantId"};
  auto q2 = query::ParseQuery(
      "SELECT avg(amount) FROM payments GROUP BY merchantId "
      "OVER sliding 5 minutes");
  stream.queries.push_back(q2.value());
  ASSERT_TRUE(cluster.RegisterStream(stream).ok());

  std::atomic<int> replies{0};
  std::atomic<int> total_metrics{0};
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(
        cluster.node(0)
            ->frontend()
            ->Submit("payments",
                     PaymentEvent(i * kMicrosPerSecond,
                                  static_cast<uint64_t>(i + 1), "cardX", 2.0),
                     [&](Status, const std::vector<MetricReply>& rs) {
                       total_metrics += static_cast<int>(rs.size());
                       ++replies;
                     })
            .ok());
    MonotonicClock::Default()->SleepMicros(2000);
  }
  for (int waited = 0; waited < 2000 && replies < 30; ++waited) {
    MonotonicClock::Default()->SleepMicros(10000);
  }
  ASSERT_EQ(replies.load(), 30);
  // Each event must report Q1's two metrics (card topic) + Q2's one
  // metric (merchant topic).
  EXPECT_EQ(total_metrics.load(), 30 * 3);
  cluster.Stop();
}

}  // namespace
}  // namespace railgun::engine
