// Tests for every aggregator (paper Fig. 4), including expiry semantics
// and a property sweep comparing the incremental aggregators against
// brute-force recomputation over a sliding window.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <deque>
#include <set>

#include "agg/aggregator.h"
#include "common/random.h"
#include "storage/db.h"

namespace railgun::agg {
namespace {

using reservoir::Event;
using reservoir::FieldValue;

Event MakeEvent(uint64_t offset) {
  Event e;
  e.offset = offset;
  e.id = offset;
  e.timestamp = static_cast<Micros>(offset) * 1000;
  return e;
}

double ResultOf(Aggregator* agg, const std::string& state) {
  auto r = agg->Result(state);
  EXPECT_TRUE(r.ok());
  return r.value().ToNumber();
}

TEST(AggKindTest, ParseAllNames) {
  EXPECT_EQ(ParseAggKind("count").value(), AggKind::kCount);
  EXPECT_EQ(ParseAggKind("SUM").value(), AggKind::kSum);
  EXPECT_EQ(ParseAggKind("Avg").value(), AggKind::kAvg);
  EXPECT_EQ(ParseAggKind("stdDev").value(), AggKind::kStdDev);
  EXPECT_EQ(ParseAggKind("max").value(), AggKind::kMax);
  EXPECT_EQ(ParseAggKind("min").value(), AggKind::kMin);
  EXPECT_EQ(ParseAggKind("last").value(), AggKind::kLast);
  EXPECT_EQ(ParseAggKind("prev").value(), AggKind::kPrev);
  EXPECT_EQ(ParseAggKind("countDistinct").value(), AggKind::kCountDistinct);
  EXPECT_FALSE(ParseAggKind("median").ok());
}

TEST(CountTest, EnterExpire) {
  auto agg = Aggregator::Create(AggKind::kCount);
  std::string state;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        agg->Enter(FieldValue(1.0), MakeEvent(i), &state, nullptr).ok());
  }
  EXPECT_EQ(ResultOf(agg.get(), state), 5);
  ASSERT_TRUE(
      agg->Expire(FieldValue(1.0), MakeEvent(0), &state, nullptr).ok());
  EXPECT_EQ(ResultOf(agg.get(), state), 4);
}

TEST(SumTest, EnterExpireWithNegatives) {
  auto agg = Aggregator::Create(AggKind::kSum);
  std::string state;
  ASSERT_TRUE(agg->Enter(FieldValue(10.5), MakeEvent(1), &state, nullptr).ok());
  ASSERT_TRUE(agg->Enter(FieldValue(-3.25), MakeEvent(2), &state, nullptr).ok());
  EXPECT_DOUBLE_EQ(ResultOf(agg.get(), state), 7.25);
  ASSERT_TRUE(agg->Expire(FieldValue(10.5), MakeEvent(1), &state, nullptr).ok());
  EXPECT_DOUBLE_EQ(ResultOf(agg.get(), state), -3.25);
}

TEST(AvgTest, TracksSumAndCount) {
  auto agg = Aggregator::Create(AggKind::kAvg);
  std::string state;
  for (double v : {2.0, 4.0, 6.0}) {
    ASSERT_TRUE(agg->Enter(FieldValue(v), MakeEvent(1), &state, nullptr).ok());
  }
  EXPECT_DOUBLE_EQ(ResultOf(agg.get(), state), 4.0);
  ASSERT_TRUE(agg->Expire(FieldValue(2.0), MakeEvent(1), &state, nullptr).ok());
  EXPECT_DOUBLE_EQ(ResultOf(agg.get(), state), 5.0);
}

TEST(AvgTest, EmptyWindowIsZero) {
  auto agg = Aggregator::Create(AggKind::kAvg);
  std::string state;
  EXPECT_DOUBLE_EQ(ResultOf(agg.get(), state), 0.0);
  ASSERT_TRUE(agg->Enter(FieldValue(5.0), MakeEvent(1), &state, nullptr).ok());
  ASSERT_TRUE(agg->Expire(FieldValue(5.0), MakeEvent(1), &state, nullptr).ok());
  EXPECT_DOUBLE_EQ(ResultOf(agg.get(), state), 0.0);
}

TEST(StdDevTest, MatchesClosedForm) {
  auto agg = Aggregator::Create(AggKind::kStdDev);
  std::string state;
  const double values[] = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double v : values) {
    ASSERT_TRUE(agg->Enter(FieldValue(v), MakeEvent(1), &state, nullptr).ok());
  }
  // Sample stddev of this classic set: sqrt(32/7).
  EXPECT_NEAR(ResultOf(agg.get(), state), std::sqrt(32.0 / 7.0), 1e-9);
}

TEST(StdDevTest, ExpiryInvertsWelford) {
  auto agg = Aggregator::Create(AggKind::kStdDev);
  std::string state;
  // Enter 1..6, expire 1: result equals stddev of 2..6.
  for (int v = 1; v <= 6; ++v) {
    ASSERT_TRUE(agg->Enter(FieldValue(static_cast<double>(v)), MakeEvent(1),
                           &state, nullptr)
                    .ok());
  }
  ASSERT_TRUE(agg->Expire(FieldValue(1.0), MakeEvent(1), &state, nullptr).ok());
  // stddev({2,3,4,5,6}) = sqrt(10/4).
  EXPECT_NEAR(ResultOf(agg.get(), state), std::sqrt(10.0 / 4.0), 1e-9);
}

TEST(MaxMinTest, MonotonicDequeExactUnderExpiry) {
  auto max_agg = Aggregator::Create(AggKind::kMax);
  auto min_agg = Aggregator::Create(AggKind::kMin);
  std::string max_state, min_state;

  const double values[] = {5, 3, 8, 1, 8, 2};
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(max_agg->Enter(FieldValue(values[i]), MakeEvent(i),
                               &max_state, nullptr).ok());
    ASSERT_TRUE(min_agg->Enter(FieldValue(values[i]), MakeEvent(i),
                               &min_state, nullptr).ok());
  }
  EXPECT_DOUBLE_EQ(ResultOf(max_agg.get(), max_state), 8);
  EXPECT_DOUBLE_EQ(ResultOf(min_agg.get(), min_state), 1);

  // Expire events 0..3 (FIFO): window = {8, 2}.
  for (uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(max_agg->Expire(FieldValue(values[i]), MakeEvent(i),
                                &max_state, nullptr).ok());
    ASSERT_TRUE(min_agg->Expire(FieldValue(values[i]), MakeEvent(i),
                                &min_state, nullptr).ok());
  }
  EXPECT_DOUBLE_EQ(ResultOf(max_agg.get(), max_state), 8);
  EXPECT_DOUBLE_EQ(ResultOf(min_agg.get(), min_state), 2);
}

TEST(LastPrevTest, TracksRecency) {
  auto last_agg = Aggregator::Create(AggKind::kLast);
  auto prev_agg = Aggregator::Create(AggKind::kPrev);
  std::string last_state, prev_state;

  ASSERT_TRUE(last_agg->Enter(FieldValue(1.0), MakeEvent(1), &last_state,
                              nullptr).ok());
  ASSERT_TRUE(prev_agg->Enter(FieldValue(1.0), MakeEvent(1), &prev_state,
                              nullptr).ok());
  EXPECT_DOUBLE_EQ(ResultOf(last_agg.get(), last_state), 1.0);
  EXPECT_DOUBLE_EQ(ResultOf(prev_agg.get(), prev_state), 0.0);  // No prev yet.

  ASSERT_TRUE(last_agg->Enter(FieldValue(2.0), MakeEvent(2), &last_state,
                              nullptr).ok());
  ASSERT_TRUE(prev_agg->Enter(FieldValue(2.0), MakeEvent(2), &prev_state,
                              nullptr).ok());
  EXPECT_DOUBLE_EQ(ResultOf(last_agg.get(), last_state), 2.0);
  EXPECT_DOUBLE_EQ(ResultOf(prev_agg.get(), prev_state), 1.0);
}

class CountDistinctTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(storage::DestroyDB("/tmp/railgun_agg_cd_test").ok());
    storage::DBOptions options;
    ASSERT_TRUE(
        storage::DB::Open(options, "/tmp/railgun_agg_cd_test", &db_).ok());
    auto cf = db_->CreateColumnFamily("aux");
    ASSERT_TRUE(cf.ok());
    ctx_.db = db_.get();
    ctx_.aux_cf = cf.value();
    ctx_.aux_key_prefix = "m1|card9|";
  }
  std::unique_ptr<storage::DB> db_;
  AggContext ctx_;
};

TEST_F(CountDistinctTest, CountsDistinctWithRefCounts) {
  auto agg = Aggregator::Create(AggKind::kCountDistinct);
  std::string state;
  // addr1, addr2, addr1 => 2 distinct.
  ASSERT_TRUE(agg->Enter(FieldValue("addr1"), MakeEvent(1), &state, &ctx_).ok());
  ASSERT_TRUE(agg->Enter(FieldValue("addr2"), MakeEvent(2), &state, &ctx_).ok());
  ASSERT_TRUE(agg->Enter(FieldValue("addr1"), MakeEvent(3), &state, &ctx_).ok());
  EXPECT_EQ(ResultOf(agg.get(), state), 2);

  // Expire one addr1: still 2 distinct (refcount 1 left).
  ASSERT_TRUE(agg->Expire(FieldValue("addr1"), MakeEvent(1), &state, &ctx_).ok());
  EXPECT_EQ(ResultOf(agg.get(), state), 2);
  // Expire the second addr1: down to 1.
  ASSERT_TRUE(agg->Expire(FieldValue("addr1"), MakeEvent(3), &state, &ctx_).ok());
  EXPECT_EQ(ResultOf(agg.get(), state), 1);
}

TEST_F(CountDistinctTest, RequiresContext) {
  auto agg = Aggregator::Create(AggKind::kCountDistinct);
  std::string state;
  EXPECT_FALSE(
      agg->Enter(FieldValue("x"), MakeEvent(1), &state, nullptr).ok());
}

// Property sweep: every aggregator matches brute-force recomputation
// over a sliding count-window of random data.
class AggPropertyTest : public ::testing::TestWithParam<AggKind> {};

TEST_P(AggPropertyTest, MatchesBruteForceUnderSlidingWindow) {
  const AggKind kind = GetParam();
  auto agg = Aggregator::Create(kind);
  std::string state;
  Random64 rng(static_cast<uint64_t>(kind) + 100);

  std::deque<std::pair<uint64_t, double>> window;  // (offset, value)
  const size_t window_size = 20;
  for (uint64_t i = 0; i < 500; ++i) {
    const double v = std::floor(rng.NextDouble() * 100) / 4.0;
    ASSERT_TRUE(
        agg->Enter(FieldValue(v), MakeEvent(i), &state, nullptr).ok());
    window.push_back({i, v});
    if (window.size() > window_size) {
      auto [off, old] = window.front();
      window.pop_front();
      ASSERT_TRUE(
          agg->Expire(FieldValue(old), MakeEvent(off), &state, nullptr).ok());
    }

    // Brute force over the window contents.
    double expected = 0;
    switch (kind) {
      case AggKind::kCount:
        expected = static_cast<double>(window.size());
        break;
      case AggKind::kSum:
        for (auto& [o, x] : window) expected += x;
        break;
      case AggKind::kAvg: {
        double sum = 0;
        for (auto& [o, x] : window) sum += x;
        expected = sum / static_cast<double>(window.size());
        break;
      }
      case AggKind::kMax: {
        expected = window.front().second;
        for (auto& [o, x] : window) expected = std::max(expected, x);
        break;
      }
      case AggKind::kMin: {
        expected = window.front().second;
        for (auto& [o, x] : window) expected = std::min(expected, x);
        break;
      }
      case AggKind::kStdDev: {
        if (window.size() < 2) {
          expected = 0;
        } else {
          double mean = 0;
          for (auto& [o, x] : window) mean += x;
          mean /= static_cast<double>(window.size());
          double m2 = 0;
          for (auto& [o, x] : window) m2 += (x - mean) * (x - mean);
          expected = std::sqrt(m2 / static_cast<double>(window.size() - 1));
        }
        break;
      }
      case AggKind::kLast:
        expected = window.back().second;
        break;
      default:
        return;  // prev / countDistinct covered elsewhere.
    }
    ASSERT_NEAR(ResultOf(agg.get(), state), expected, 1e-6)
        << AggKindName(kind) << " diverged at step " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AggPropertyTest,
                         ::testing::Values(AggKind::kCount, AggKind::kSum,
                                           AggKind::kAvg, AggKind::kStdDev,
                                           AggKind::kMax, AggKind::kMin,
                                           AggKind::kLast));

// The columnar batch entry points must be observationally equivalent to
// the same values applied one scalar call at a time — the plan layer
// switches between the two based on run length, so any divergence would
// make results depend on message batching.
class AggColumnTest : public ::testing::TestWithParam<AggKind> {};

TEST_P(AggColumnTest, ColumnCallsMatchScalarLoops) {
  const AggKind kind = GetParam();
  auto scalar = Aggregator::Create(kind);
  auto column = Aggregator::Create(kind);
  std::string scalar_state, column_state;
  Random64 rng(static_cast<uint64_t>(kind) + 999);

  std::deque<std::pair<uint64_t, double>> window;  // (offset, value)
  const size_t window_size = 17;
  uint64_t offset = 0;
  for (int round = 0; round < 60; ++round) {
    // Enter a batch of 1..8 values (run lengths vary like real batches).
    const size_t n = 1 + rng.Uniform(8);
    std::vector<double> values;
    std::vector<uint64_t> offsets;
    for (size_t i = 0; i < n; ++i) {
      values.push_back(std::floor(rng.NextDouble() * 100) / 4.0);
      offsets.push_back(offset++);
    }
    for (size_t i = 0; i < n; ++i) {
      ASSERT_TRUE(scalar
                      ->Enter(FieldValue(values[i]), MakeEvent(offsets[i]),
                              &scalar_state, nullptr)
                      .ok());
      window.push_back({offsets[i], values[i]});
    }
    ASSERT_TRUE(column
                    ->EnterColumn(values.data(), offsets.data(), n,
                                  &column_state, nullptr)
                    .ok());

    // Expire down to the window size, also in one columnar call.
    std::vector<double> old_values;
    std::vector<uint64_t> old_offsets;
    while (window.size() > window_size) {
      old_values.push_back(window.front().second);
      old_offsets.push_back(window.front().first);
      window.pop_front();
    }
    for (size_t i = 0; i < old_values.size(); ++i) {
      ASSERT_TRUE(scalar
                      ->Expire(FieldValue(old_values[i]),
                               MakeEvent(old_offsets[i]), &scalar_state,
                               nullptr)
                      .ok());
    }
    if (!old_values.empty()) {
      ASSERT_TRUE(column
                      ->ExpireColumn(old_values.data(), old_offsets.data(),
                                     old_values.size(), &column_state,
                                     nullptr)
                      .ok());
    }

    ASSERT_NEAR(ResultOf(column.get(), column_state),
                ResultOf(scalar.get(), scalar_state), 1e-9)
        << AggKindName(kind) << " diverged at round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AggColumnTest,
                         ::testing::Values(AggKind::kCount, AggKind::kSum,
                                           AggKind::kAvg, AggKind::kStdDev,
                                           AggKind::kMax, AggKind::kMin,
                                           AggKind::kLast, AggKind::kPrev));

}  // namespace
}  // namespace railgun::agg
