// Model-based randomized testing of the LSM store: a long random
// sequence of puts/deletes/batches/flushes/reopens/checkpoints is
// mirrored into an in-memory reference model; the store must agree with
// the model at every probe point, across column families.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "storage/db.h"

namespace railgun::storage {
namespace {

class ModelTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void SetUp() override {
    dir_ = "/tmp/railgun_model_test_" + std::to_string(GetParam());
    ASSERT_TRUE(DestroyDB(dir_).ok());
    options_.write_buffer_size = 16 * 1024;  // Aggressive flushing.
    options_.max_bytes_for_level_base = 64 * 1024;
    options_.target_file_size = 16 * 1024;
    Open();
  }

  void TearDown() override {
    db_.reset();
    ASSERT_TRUE(DestroyDB(dir_).ok());
  }

  void Open() {
    db_.reset();  // Close (flushing the WAL) before reopening.
    ASSERT_TRUE(DB::Open(options_, dir_, &db_).ok());
  }

  std::string RandomKey(Random64* rng) {
    char buf[24];
    snprintf(buf, sizeof(buf), "key%06llu",
             static_cast<unsigned long long>(rng->Uniform(800)));
    return buf;
  }

  DBOptions options_;
  std::string dir_;
  std::unique_ptr<DB> db_;
};

TEST_P(ModelTest, AgreesWithReferenceModelUnderChurn) {
  Random64 rng(GetParam());
  // Model: cf -> key -> value.
  std::map<uint32_t, std::map<std::string, std::string>> model;
  std::vector<uint32_t> cfs = {kDefaultColumnFamily};
  auto aux = db_->CreateColumnFamily("aux");
  ASSERT_TRUE(aux.ok());
  cfs.push_back(aux.value());

  for (int step = 0; step < 8000; ++step) {
    const uint32_t cf = cfs[rng.Uniform(cfs.size())];
    const int action = static_cast<int>(rng.Uniform(100));
    if (action < 55) {  // Put.
      const std::string key = RandomKey(&rng);
      const std::string value =
          "v" + std::to_string(step) + std::string(rng.Uniform(64), 'x');
      ASSERT_TRUE(db_->Put(cf, key, value).ok());
      model[cf][key] = value;
    } else if (action < 75) {  // Delete (possibly nonexistent).
      const std::string key = RandomKey(&rng);
      ASSERT_TRUE(db_->Delete(cf, key).ok());
      model[cf].erase(key);
    } else if (action < 90) {  // Batched update.
      WriteBatch batch;
      std::map<uint32_t, std::map<std::string, std::string>> staged;
      std::map<uint32_t, std::vector<std::string>> deleted;
      for (int i = 0; i < 5; ++i) {
        const uint32_t bcf = cfs[rng.Uniform(cfs.size())];
        const std::string key = RandomKey(&rng);
        if (rng.OneIn(4)) {
          batch.Delete(bcf, key);
          staged[bcf].erase(key);
          deleted[bcf].push_back(key);
        } else {
          const std::string value = "b" + std::to_string(step * 10 + i);
          batch.Put(bcf, key, value);
          staged[bcf][key] = value;
          auto& dels = deleted[bcf];
          dels.erase(std::remove(dels.begin(), dels.end(), key),
                     dels.end());
        }
      }
      ASSERT_TRUE(db_->Write(&batch).ok());
      for (auto& [bcf, dels] : deleted) {
        for (const auto& key : dels) model[bcf].erase(key);
      }
      for (auto& [bcf, kvs] : staged) {
        for (auto& [key, value] : kvs) model[bcf][key] = value;
      }
    } else if (action < 94) {  // Flush.
      ASSERT_TRUE(db_->Flush().ok());
    } else if (action < 97) {  // Probe a batch of random keys.
      for (int i = 0; i < 10; ++i) {
        const uint32_t pcf = cfs[rng.Uniform(cfs.size())];
        const std::string key = RandomKey(&rng);
        std::string value;
        const Status s = db_->Get(pcf, key, &value);
        auto it = model[pcf].find(key);
        if (it == model[pcf].end()) {
          EXPECT_TRUE(s.IsNotFound())
              << "step " << step << " cf " << pcf << " key " << key
              << ": store has a value the model does not";
        } else {
          ASSERT_TRUE(s.ok()) << "step " << step << " key " << key << ": "
                              << s.ToString();
          EXPECT_EQ(value, it->second) << "step " << step;
        }
      }
    } else {  // Reopen (clean close + WAL replay path).
      Open();
    }
  }

  // Final full audit including a scan comparison.
  for (const uint32_t cf : cfs) {
    auto iter = db_->NewIterator(cf);
    auto expected = model[cf].begin();
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      ASSERT_NE(expected, model[cf].end())
          << "store iterates beyond the model in cf " << cf << " at key "
          << iter->key().ToString();
      EXPECT_EQ(iter->key().ToString(), expected->first);
      EXPECT_EQ(iter->value().ToString(), expected->second);
      ++expected;
    }
    EXPECT_EQ(expected, model[cf].end())
        << "model has keys the store's scan missed in cf " << cf;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelTest,
                         ::testing::Values(1, 7, 42, 1234));

}  // namespace
}  // namespace railgun::storage
