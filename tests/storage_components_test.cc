// Unit tests for the LSM store's internal layers: arena, skip list,
// internal keys, write batch, WAL, blocks and tables.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "common/arena.h"
#include "common/env.h"
#include "common/random.h"
#include "storage/block.h"
#include "storage/block_builder.h"
#include "storage/dbformat.h"
#include "storage/log_reader.h"
#include "storage/log_writer.h"
#include "storage/memtable.h"
#include "storage/skiplist.h"
#include "storage/table.h"
#include "storage/table_builder.h"
#include "storage/write_batch.h"

namespace railgun::storage {
namespace {

TEST(ArenaTest, AllocatesAndTracksUsage) {
  Arena arena;
  EXPECT_EQ(arena.MemoryUsage(), 0u);
  char* p = arena.Allocate(100);
  ASSERT_NE(p, nullptr);
  memset(p, 0xab, 100);  // Must be writable.
  EXPECT_GT(arena.MemoryUsage(), 0u);
  // Large allocations get dedicated blocks.
  char* big = arena.Allocate(100000);
  ASSERT_NE(big, nullptr);
  memset(big, 1, 100000);
}

TEST(ArenaTest, AlignedAllocations) {
  Arena arena;
  arena.Allocate(1);  // Misalign the bump pointer.
  char* p = arena.AllocateAligned(64);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % sizeof(void*), 0u);
}

struct IntComparator {
  int operator()(const int& a, const int& b) const {
    return a < b ? -1 : (a > b ? 1 : 0);
  }
};

TEST(SkipListTest, InsertLookupAndOrderedIteration) {
  Arena arena;
  SkipList<int, IntComparator> list(IntComparator(), &arena);
  Random64 rng(3);
  std::set<int> inserted;
  for (int i = 0; i < 2000; ++i) {
    const int key = static_cast<int>(rng.Uniform(10000));
    if (inserted.insert(key).second) list.Insert(key);
  }
  for (int key : inserted) EXPECT_TRUE(list.Contains(key));
  EXPECT_FALSE(list.Contains(10001));

  SkipList<int, IntComparator>::Iterator iter(&list);
  iter.SeekToFirst();
  auto expected = inserted.begin();
  while (iter.Valid()) {
    ASSERT_NE(expected, inserted.end());
    EXPECT_EQ(iter.key(), *expected);
    ++expected;
    iter.Next();
  }
  EXPECT_EQ(expected, inserted.end());

  // Seek semantics: first key >= target.
  iter.Seek(5000);
  auto lb = inserted.lower_bound(5000);
  if (lb == inserted.end()) {
    EXPECT_FALSE(iter.Valid());
  } else {
    ASSERT_TRUE(iter.Valid());
    EXPECT_EQ(iter.key(), *lb);
  }
}

TEST(DbFormatTest, InternalKeyOrdering) {
  // Same user key: higher sequence sorts first.
  std::string k1, k2, k3;
  AppendInternalKey(&k1, "apple", 10, kTypeValue);
  AppendInternalKey(&k2, "apple", 5, kTypeValue);
  AppendInternalKey(&k3, "banana", 1, kTypeValue);
  InternalKeyComparator cmp;
  EXPECT_LT(cmp.Compare(k1, k2), 0);
  EXPECT_LT(cmp.Compare(k2, k3), 0);
  EXPECT_GT(cmp.Compare(k3, k1), 0);
}

TEST(DbFormatTest, ParseRoundTrip) {
  std::string key;
  AppendInternalKey(&key, "user_key", 42, kTypeDeletion);
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(key, &parsed));
  EXPECT_EQ(parsed.user_key.ToString(), "user_key");
  EXPECT_EQ(parsed.sequence, 42u);
  EXPECT_EQ(parsed.type, kTypeDeletion);
}

TEST(WriteBatchTest, IterateReplaysInOrder) {
  WriteBatch batch;
  batch.Put(0, "a", "1");
  batch.Delete(1, "b");
  batch.Put(2, "c", "3");
  EXPECT_EQ(batch.Count(), 3);

  struct Collector : public WriteBatch::Handler {
    std::string log;
    void Put(uint32_t cf, const Slice& k, const Slice& v) override {
      log += "P" + std::to_string(cf) + k.ToString() + v.ToString() + ";";
    }
    void Delete(uint32_t cf, const Slice& k) override {
      log += "D" + std::to_string(cf) + k.ToString() + ";";
    }
  } collector;
  ASSERT_TRUE(batch.Iterate(&collector).ok());
  EXPECT_EQ(collector.log, "P0a1;D1b;P2c3;");
}

TEST(WriteBatchTest, SequenceRoundTrip) {
  WriteBatch batch;
  batch.SetSequence(777);
  EXPECT_EQ(batch.Sequence(), 777u);
}

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    env_ = Env::Default();
    path_ = "/tmp/railgun_wal_test.log";
    (void)env_->RemoveFile(path_);
  }
  Env* env_;
  std::string path_;
};

TEST_F(WalTest, RoundTripManyRecords) {
  std::vector<std::string> records;
  Random64 rng(9);
  for (int i = 0; i < 300; ++i) {
    // Sizes straddle block boundaries (including > 32 KiB records).
    records.push_back(std::string(rng.Uniform(60000) + 1,
                                  static_cast<char>('a' + i % 26)));
  }
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(path_, &file).ok());
    log::Writer writer(file.get());
    for (const auto& r : records) ASSERT_TRUE(writer.AddRecord(r).ok());
    ASSERT_TRUE(file->Close().ok());
  }
  {
    std::unique_ptr<SequentialFile> file;
    ASSERT_TRUE(env_->NewSequentialFile(path_, &file).ok());
    log::Reader reader(file.get());
    Slice record;
    std::string scratch;
    for (const auto& expected : records) {
      ASSERT_TRUE(reader.ReadRecord(&record, &scratch));
      EXPECT_EQ(record.ToString(), expected);
    }
    EXPECT_FALSE(reader.ReadRecord(&record, &scratch));
    EXPECT_EQ(reader.dropped_records(), 0u);
  }
}

TEST_F(WalTest, TornTailIsDiscardedNotFatal) {
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(path_, &file).ok());
    log::Writer writer(file.get());
    ASSERT_TRUE(writer.AddRecord("complete-record").ok());
    ASSERT_TRUE(writer.AddRecord(std::string(500, 'x')).ok());
    ASSERT_TRUE(file->Close().ok());
  }
  // Truncate mid-second-record (simulates a crash during append).
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, path_, &contents).ok());
  contents.resize(contents.size() - 300);
  ASSERT_TRUE(WriteStringToFile(env_, contents, path_).ok());

  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(env_->NewSequentialFile(path_, &file).ok());
  log::Reader reader(file.get());
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader.ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "complete-record");
  EXPECT_FALSE(reader.ReadRecord(&record, &scratch));
}

TEST_F(WalTest, CorruptRecordSkipped) {
  // Corruption drops the affected block's remainder (its lengths are
  // untrustworthy) but records in later blocks still read back. Record 1
  // spans blocks 0-1; record 2 lives in block 1.
  const std::string big(static_cast<size_t>(log::kBlockSize) + 500, 'a');
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env_->NewWritableFile(path_, &file).ok());
    log::Writer writer(file.get());
    ASSERT_TRUE(writer.AddRecord(big).ok());
    ASSERT_TRUE(writer.AddRecord("second").ok());
    ASSERT_TRUE(file->Close().ok());
  }
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_, path_, &contents).ok());
  contents[log::kHeaderSize] ^= 0x40;  // Corrupt record 1's first block.
  ASSERT_TRUE(WriteStringToFile(env_, contents, path_).ok());

  std::unique_ptr<SequentialFile> file;
  ASSERT_TRUE(env_->NewSequentialFile(path_, &file).ok());
  log::Reader reader(file.get());
  Slice record;
  std::string scratch;
  ASSERT_TRUE(reader.ReadRecord(&record, &scratch));
  EXPECT_EQ(record.ToString(), "second");
  EXPECT_GE(reader.dropped_records(), 1u);
}

TEST(MemTableTest, AddGetWithVersions) {
  MemTable mem;
  EXPECT_TRUE(mem.Empty());
  mem.Add(1, kTypeValue, "k", "v1");
  mem.Add(2, kTypeValue, "k", "v2");
  EXPECT_FALSE(mem.Empty());

  std::string value;
  bool deleted = false;
  // Snapshot at seq 2 sees v2; at seq 1 sees v1.
  ASSERT_TRUE(mem.Get(LookupKey("k", 2), &value, &deleted));
  EXPECT_FALSE(deleted);
  EXPECT_EQ(value, "v2");
  ASSERT_TRUE(mem.Get(LookupKey("k", 1), &value, &deleted));
  EXPECT_EQ(value, "v1");

  mem.Add(3, kTypeDeletion, "k", "");
  ASSERT_TRUE(mem.Get(LookupKey("k", 3), &value, &deleted));
  EXPECT_TRUE(deleted);

  EXPECT_FALSE(mem.Get(LookupKey("other", 3), &value, &deleted));
}

TEST(BlockTest, BuildAndIterate) {
  BlockBuilder builder(4);  // Small restart interval to exercise restarts.
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 200; ++i) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    std::string ikey;
    AppendInternalKey(&ikey, key, 1, kTypeValue);
    builder.Add(ikey, "value" + std::to_string(i));
    entries[ikey] = "value" + std::to_string(i);
  }
  Block block(builder.Finish().ToString());
  Block::Iter iter(&block);

  iter.SeekToFirst();
  auto expected = entries.begin();
  while (iter.Valid()) {
    ASSERT_NE(expected, entries.end());
    EXPECT_EQ(iter.key().ToString(), expected->first);
    EXPECT_EQ(iter.value().ToString(), expected->second);
    ++expected;
    iter.Next();
  }
  EXPECT_EQ(expected, entries.end());

  // Seek to an existing key and to a key between entries.
  std::string target;
  AppendInternalKey(&target, "key000100", 1, kTypeValue);
  iter.Seek(target);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.value().ToString(), "value100");

  std::string between;
  AppendInternalKey(&between, "key0000995", kMaxSequenceNumber, kTypeValue);
  iter.Seek(between);
  ASSERT_TRUE(iter.Valid());
  EXPECT_EQ(iter.value().ToString(), "value100");  // First key >= target.
}

TEST(TableTest, BuildWriteReadBack) {
  Env* env = Env::Default();
  const std::string path = "/tmp/railgun_table_test.sst";
  (void)env->RemoveFile(path);

  std::map<std::string, std::string> entries;
  {
    std::unique_ptr<WritableFile> file;
    ASSERT_TRUE(env->NewWritableFile(path, &file).ok());
    TableBuilderOptions opts;
    opts.block_size = 512;  // Many blocks.
    TableBuilder builder(opts, file.get());
    for (int i = 0; i < 1000; ++i) {
      char key[32];
      snprintf(key, sizeof(key), "key%06d", i);
      std::string ikey;
      AppendInternalKey(&ikey, key, 7, kTypeValue);
      const std::string value = "payload-" + std::to_string(i * 3);
      builder.Add(ikey, value);
      entries[ikey] = value;
    }
    ASSERT_TRUE(builder.Finish().ok());
    EXPECT_EQ(builder.NumEntries(), 1000u);
    ASSERT_TRUE(file->Close().ok());
  }

  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile(path, &file).ok());
  std::unique_ptr<Table> table;
  ASSERT_TRUE(Table::Open(std::move(file), &table).ok());

  // Point lookups.
  for (int i : {0, 1, 499, 998, 999}) {
    char key[32];
    snprintf(key, sizeof(key), "key%06d", i);
    std::string target;
    AppendInternalKey(&target, key, kMaxSequenceNumber, kTypeValue);
    std::string found_key, found_value;
    ASSERT_TRUE(table->InternalGet(target, &found_key, &found_value).ok());
    EXPECT_EQ(found_value, "payload-" + std::to_string(i * 3));
  }

  // Full scan matches insertion order.
  Table::Iterator iter(table.get());
  iter.SeekToFirst();
  auto expected = entries.begin();
  while (iter.Valid()) {
    ASSERT_NE(expected, entries.end());
    EXPECT_EQ(iter.key().ToString(), expected->first);
    EXPECT_EQ(iter.value().ToString(), expected->second);
    ++expected;
    iter.Next();
  }
  EXPECT_EQ(expected, entries.end());
  (void)env->RemoveFile(path);
}

TEST(TableTest, OpenRejectsGarbage) {
  Env* env = Env::Default();
  const std::string path = "/tmp/railgun_table_garbage.sst";
  ASSERT_TRUE(
      WriteStringToFile(env, std::string(500, 'g'), path).ok());
  std::unique_ptr<RandomAccessFile> file;
  ASSERT_TRUE(env->NewRandomAccessFile(path, &file).ok());
  std::unique_ptr<Table> table;
  EXPECT_FALSE(Table::Open(std::move(file), &table).ok());
  (void)env->RemoveFile(path);
}

}  // namespace
}  // namespace railgun::storage
