// Tests for the query parser (paper Fig. 4 grammar), the filter
// expression language and the stream DDL.
#include <gtest/gtest.h>

#include "query/ddl.h"
#include "query/expr.h"
#include "query/query.h"

namespace railgun::query {
namespace {

using reservoir::Event;
using reservoir::FieldType;
using reservoir::FieldValue;
using reservoir::Schema;

Schema TestSchema() {
  return Schema(1, {{"cardId", FieldType::kString},
                    {"amount", FieldType::kDouble},
                    {"count", FieldType::kInt64},
                    {"flagged", FieldType::kBool}});
}

Event TestEvent(const std::string& card, double amount, int64_t count,
                bool flagged) {
  Event e;
  e.values = {FieldValue(card), FieldValue(amount), FieldValue(count),
              FieldValue(flagged)};
  return e;
}

TEST(ExprTest, ArithmeticAndComparison) {
  auto expr_or = ParseExpr("amount * 2 + 1 > 10");
  ASSERT_TRUE(expr_or.ok());
  auto expr = std::move(expr_or).value();
  const Schema schema = TestSchema();
  ASSERT_TRUE(expr->Bind(schema).ok());
  EXPECT_TRUE(expr->EvalBool(TestEvent("c", 5.0, 0, false)));
  EXPECT_FALSE(expr->EvalBool(TestEvent("c", 4.0, 0, false)));
  EXPECT_FALSE(expr->EvalBool(TestEvent("c", 4.5, 0, false)));  // 10 > 10.
}

TEST(ExprTest, BooleanLogicAndPrecedence) {
  auto expr = ParseExpr("amount > 100 and flagged or count == 3").value();
  ASSERT_TRUE(expr->Bind(TestSchema()).ok());
  EXPECT_TRUE(expr->EvalBool(TestEvent("c", 200, 0, true)));
  EXPECT_FALSE(expr->EvalBool(TestEvent("c", 200, 0, false)));
  EXPECT_TRUE(expr->EvalBool(TestEvent("c", 1, 3, false)));
  EXPECT_FALSE(expr->EvalBool(TestEvent("c", 1, 4, false)));
}

TEST(ExprTest, StringComparisonAndNot) {
  auto expr = ParseExpr("not (cardId == 'card7')").value();
  ASSERT_TRUE(expr->Bind(TestSchema()).ok());
  EXPECT_FALSE(expr->EvalBool(TestEvent("card7", 0, 0, false)));
  EXPECT_TRUE(expr->EvalBool(TestEvent("card8", 0, 0, false)));
}

TEST(ExprTest, UnaryMinusAndDivision) {
  auto expr = ParseExpr("-amount / 2").value();
  ASSERT_TRUE(expr->Bind(TestSchema()).ok());
  auto v = expr->Eval(TestEvent("c", 10, 0, false));
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->ToNumber(), -5.0);
}

TEST(ExprTest, DivisionByZeroYieldsZero) {
  auto expr = ParseExpr("amount / count").value();
  ASSERT_TRUE(expr->Bind(TestSchema()).ok());
  auto v = expr->Eval(TestEvent("c", 10, 0, false));
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->ToNumber(), 0.0);
}

TEST(ExprTest, UnknownFieldFailsBind) {
  auto expr = ParseExpr("nonexistent > 1").value();
  EXPECT_FALSE(expr->Bind(TestSchema()).ok());
}

TEST(ExprTest, ParseErrors) {
  EXPECT_FALSE(ParseExpr("1 +").ok());
  EXPECT_FALSE(ParseExpr("(a > 1").ok());
  EXPECT_FALSE(ParseExpr("a > 1 extra junk").ok());
  EXPECT_FALSE(ParseExpr("'unterminated").ok());
}

TEST(ExprTest, CanonicalToString) {
  auto expr = ParseExpr("amount > 10 and flagged").value();
  EXPECT_EQ(expr->ToString(), "((amount > 10) and flagged)");
}

TEST(QueryParserTest, PaperQ1) {
  auto q = ParseQuery(
      "SELECT SUM(amount), COUNT(*) FROM payments "
      "GROUP BY cardId OVER sliding 5 minutes");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->stream, "payments");
  ASSERT_EQ(q->aggs.size(), 2u);
  EXPECT_EQ(q->aggs[0].kind, agg::AggKind::kSum);
  EXPECT_EQ(q->aggs[0].field, "amount");
  EXPECT_EQ(q->aggs[1].kind, agg::AggKind::kCount);
  EXPECT_TRUE(q->aggs[1].field.empty());
  ASSERT_EQ(q->group_by.size(), 1u);
  EXPECT_EQ(q->group_by[0], "cardId");
  EXPECT_EQ(q->window, window::WindowSpec::Sliding(5 * kMicrosPerMinute));
}

TEST(QueryParserTest, PaperQ2) {
  auto q = ParseQuery(
      "SELECT AVG(amount) FROM payments "
      "GROUP BY merchantId OVER sliding 5 minutes");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->aggs[0].kind, agg::AggKind::kAvg);
  EXPECT_EQ(q->group_by[0], "merchantId");
}

TEST(QueryParserTest, WhereClauseAndMultiGroupBy) {
  auto q = ParseQuery(
      "SELECT countDistinct(merchantId) FROM payments "
      "WHERE amount > 100 and cardId != 'test' "
      "GROUP BY cardId, merchantId OVER sliding 6 hours");
  ASSERT_TRUE(q.ok());
  ASSERT_NE(q->filter, nullptr);
  EXPECT_EQ(q->group_by.size(), 2u);
  EXPECT_EQ(q->window.size, 6 * kMicrosPerHour);
}

TEST(QueryParserTest, WindowVariants) {
  EXPECT_EQ(ParseQuery("SELECT count(*) FROM s OVER tumbling 1 hour")
                ->window,
            window::WindowSpec::Tumbling(kMicrosPerHour));
  EXPECT_EQ(ParseQuery("SELECT count(*) FROM s OVER infinite")->window,
            window::WindowSpec::Infinite());
  EXPECT_EQ(ParseQuery("SELECT count(*) FROM s OVER sliding 100 events")
                ->window,
            window::WindowSpec::CountSliding(100));
  EXPECT_EQ(ParseQuery("SELECT count(*) FROM s OVER sliding 7 days")
                ->window,
            window::WindowSpec::Sliding(7 * kMicrosPerDay));

  const auto delayed = ParseQuery(
      "SELECT count(*) FROM s OVER sliding 5 minutes delayed by 30 seconds");
  ASSERT_TRUE(delayed.ok());
  EXPECT_EQ(delayed->window.delay, 30 * kMicrosPerSecond);
}

TEST(QueryParserTest, TimeUnits) {
  EXPECT_EQ(ParseQuery("SELECT count(*) FROM s OVER sliding 500 ms")
                ->window.size,
            500 * kMicrosPerMilli);
  EXPECT_EQ(ParseQuery("SELECT count(*) FROM s OVER sliding 2 weeks")
                ->window.size,
            14 * kMicrosPerDay);
}

TEST(QueryParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("SELECT FROM s OVER infinite").ok());
  EXPECT_FALSE(ParseQuery("SELECT sum(amount) OVER infinite").ok());
  EXPECT_FALSE(ParseQuery("SELECT sum(amount) FROM s").ok());  // No window.
  EXPECT_FALSE(
      ParseQuery("SELECT sum(*) FROM s OVER infinite").ok());  // * not count.
  EXPECT_FALSE(
      ParseQuery("SELECT sum(amount) FROM s OVER sliding 5 fortnights").ok());
  EXPECT_FALSE(
      ParseQuery("SELECT sum(amount) FROM s OVER sliding 5 minutes junk")
          .ok());
  EXPECT_FALSE(ParseQuery("SELECT median(amount) FROM s OVER infinite").ok());
}

TEST(QueryParserTest, CaseInsensitiveKeywords) {
  auto q = ParseQuery(
      "select Sum(amount) from payments group by cardId "
      "over Sliding 5 Minutes");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->aggs[0].kind, agg::AggKind::kSum);
}

TEST(DdlTest, ParseCreateStream) {
  auto def = ParseCreateStream(
      "CREATE STREAM payments (cardId STRING, merchantId STRING, "
      "amount DOUBLE) PARTITION BY cardId, merchantId PARTITIONS 4");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->name, "payments");
  ASSERT_EQ(def->fields.size(), 3u);
  EXPECT_EQ(def->fields[0].name, "cardId");
  EXPECT_EQ(def->fields[0].type, FieldType::kString);
  EXPECT_EQ(def->fields[2].name, "amount");
  EXPECT_EQ(def->fields[2].type, FieldType::kDouble);
  ASSERT_EQ(def->partitioners.size(), 2u);
  EXPECT_EQ(def->partitioners[0], "cardId");
  EXPECT_EQ(def->partitioners[1], "merchantId");
  EXPECT_EQ(def->partitions_per_topic, 4);
}

TEST(DdlTest, CreateStreamDefaultsAndCaseInsensitivity) {
  auto def = ParseCreateStream(
      "create stream s (a int, b bool, c text, d BIGINT) partition by a");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->partitions_per_topic, 1);  // No PARTITIONS clause.
  EXPECT_EQ(def->fields[0].type, FieldType::kInt64);
  EXPECT_EQ(def->fields[1].type, FieldType::kBool);
  EXPECT_EQ(def->fields[2].type, FieldType::kString);
  EXPECT_EQ(def->fields[3].type, FieldType::kInt64);
}

TEST(DdlTest, CreateStreamErrors) {
  // Bad field type.
  EXPECT_FALSE(ParseCreateStream(
                   "CREATE STREAM s (a BLOB) PARTITION BY a")
                   .ok());
  // Duplicate field.
  EXPECT_FALSE(ParseCreateStream(
                   "CREATE STREAM s (a INT, a DOUBLE) PARTITION BY a")
                   .ok());
  // Missing PARTITION BY.
  EXPECT_FALSE(ParseCreateStream("CREATE STREAM s (a INT)").ok());
  // Partitioner not a declared field.
  EXPECT_FALSE(ParseCreateStream(
                   "CREATE STREAM s (a INT) PARTITION BY b")
                   .ok());
  // Duplicate partitioner.
  EXPECT_FALSE(ParseCreateStream(
                   "CREATE STREAM s (a INT, b INT) PARTITION BY a, a")
                   .ok());
  // Bad partition count.
  EXPECT_FALSE(ParseCreateStream(
                   "CREATE STREAM s (a INT) PARTITION BY a PARTITIONS 0")
                   .ok());
  EXPECT_FALSE(ParseCreateStream(
                   "CREATE STREAM s (a INT) PARTITION BY a PARTITIONS 1.5")
                   .ok());
  // Trailing junk / malformed clauses.
  EXPECT_FALSE(ParseCreateStream(
                   "CREATE STREAM s (a INT) PARTITION BY a junk")
                   .ok());
  EXPECT_FALSE(ParseCreateStream("CREATE STREAM s a INT PARTITION BY a")
                   .ok());
  EXPECT_FALSE(ParseCreateStream("CREATE TABLE s (a INT) PARTITION BY a")
                   .ok());
}

TEST(DdlTest, ParseDdlRoutesBothForms) {
  auto create = ParseDdl(
      "CREATE STREAM s (a STRING, v DOUBLE) PARTITION BY a");
  ASSERT_TRUE(create.ok());
  EXPECT_EQ(create->kind, DdlKind::kCreateStream);
  EXPECT_EQ(create->create_stream.name, "s");

  auto metric = ParseDdl(
      "ADD METRIC SELECT sum(v) FROM s GROUP BY a OVER sliding 5 minutes");
  ASSERT_TRUE(metric.ok()) << metric.status().ToString();
  EXPECT_EQ(metric->kind, DdlKind::kAddMetric);
  EXPECT_EQ(metric->metric.stream, "s");
  ASSERT_EQ(metric->metric.aggs.size(), 1u);
  EXPECT_EQ(metric->metric.aggs[0].kind, agg::AggKind::kSum);
  EXPECT_EQ(metric->metric.window,
            window::WindowSpec::Sliding(5 * kMicrosPerMinute));

  EXPECT_FALSE(ParseDdl("ADD METRIC sum(v) FROM s OVER infinite").ok());
  EXPECT_FALSE(ParseDdl("DROP STREAM s").ok());
  EXPECT_FALSE(
      ParseDdl("SELECT sum(v) FROM s GROUP BY a OVER infinite").ok());
}

TEST(DdlTest, IsDdlStatement) {
  EXPECT_TRUE(IsDdlStatement("CREATE STREAM s (a INT) PARTITION BY a"));
  EXPECT_TRUE(IsDdlStatement("  add metric select count(*) from s"));
  EXPECT_FALSE(IsDdlStatement("SELECT count(*) FROM s OVER infinite"));
  EXPECT_FALSE(IsDdlStatement(""));
  EXPECT_FALSE(IsDdlStatement("42"));
}

}  // namespace
}  // namespace railgun::query
