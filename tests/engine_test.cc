// Tests for the engine layer: wire envelopes, stream/partitioner
// routing, task processor checkpoint/recovery, and coordinator donor
// lookup.
#include <gtest/gtest.h>

#include "engine/coordinator.h"
#include "engine/stream_def.h"
#include "engine/task_processor.h"
#include "msg/broker.h"

namespace railgun::engine {
namespace {

using reservoir::Event;
using reservoir::FieldType;
using reservoir::FieldValue;

StreamDef PaymentsStream() {
  StreamDef stream;
  stream.name = "payments";
  stream.fields = {{"cardId", FieldType::kString},
                   {"merchantId", FieldType::kString},
                   {"amount", FieldType::kDouble}};
  stream.partitioners = {"cardId", "merchantId"};
  stream.partitions_per_topic = 2;
  auto q1 = query::ParseQuery(
      "SELECT sum(amount), count(*) FROM payments GROUP BY cardId "
      "OVER sliding 5 minutes");
  auto q2 = query::ParseQuery(
      "SELECT avg(amount) FROM payments GROUP BY merchantId "
      "OVER sliding 5 minutes");
  stream.queries = {q1.value(), q2.value()};
  return stream;
}

Event PaymentEvent(Micros ts, uint64_t id, const std::string& card,
                   const std::string& merchant, double amount) {
  Event e;
  e.timestamp = ts;
  e.id = id;
  e.values = {FieldValue(card), FieldValue(merchant), FieldValue(amount)};
  return e;
}

TEST(StreamDefTest, TopicNamingAndQueryRouting) {
  const StreamDef stream = PaymentsStream();
  EXPECT_EQ(stream.TopicFor("cardId"), "payments.cardId");
  EXPECT_EQ(stream.PartitionerForQuery(stream.queries[0]).value(), "cardId");
  EXPECT_EQ(stream.PartitionerForQuery(stream.queries[1]).value(),
            "merchantId");

  auto global = query::ParseQuery(
      "SELECT count(*) FROM payments OVER sliding 1 hour");
  EXPECT_EQ(stream.PartitionerForQuery(global.value()).value(), "cardId");

  auto uncovered = query::ParseQuery(
      "SELECT count(*) FROM payments GROUP BY amount OVER infinite");
  EXPECT_FALSE(stream.PartitionerForQuery(uncovered.value()).ok());
}

TEST(WireTest, EventEnvelopeRoundTrip) {
  const StreamDef stream = PaymentsStream();
  const reservoir::Schema schema(0, stream.fields);
  EventEnvelope env;
  env.request_id = 0xabcdef12345ull;
  env.reply_topic = "replies.node3";
  env.event = PaymentEvent(123456, 77, "card9", "m3", 42.5);

  std::string encoded;
  EncodeEventEnvelope(env, schema, &encoded);
  EventEnvelope decoded;
  ASSERT_TRUE(DecodeEventEnvelope(encoded, schema, &decoded).ok());
  EXPECT_EQ(decoded.request_id, env.request_id);
  EXPECT_EQ(decoded.reply_topic, env.reply_topic);
  EXPECT_EQ(decoded.event.timestamp, 123456);
  EXPECT_EQ(decoded.event.id, 77u);
  EXPECT_EQ(decoded.event.values[0].as_string(), "card9");
  EXPECT_DOUBLE_EQ(decoded.event.values[2].as_double(), 42.5);
}

TEST(WireTest, ReplyEnvelopeRoundTripAllValueTypes) {
  ReplyEnvelope env;
  env.request_id = 99;
  env.results = {{"count(*)", "card1", FieldValue(int64_t{7})},
                 {"sum(amount)", "card1", FieldValue(1.5)},
                 {"flag", "card1", FieldValue(true)},
                 {"last(city)", "card1", FieldValue("lisbon")}};
  std::string encoded;
  EncodeReplyEnvelope(env, &encoded);
  ReplyEnvelope decoded;
  ASSERT_TRUE(DecodeReplyEnvelope(encoded, &decoded).ok());
  ASSERT_EQ(decoded.results.size(), 4u);
  EXPECT_EQ(decoded.results[0].value.as_int(), 7);
  EXPECT_DOUBLE_EQ(decoded.results[1].value.as_double(), 1.5);
  EXPECT_TRUE(decoded.results[2].value.as_bool());
  EXPECT_EQ(decoded.results[3].value.as_string(), "lisbon");
}

TEST(WireTest, CorruptEnvelopesRejected) {
  const StreamDef stream = PaymentsStream();
  const reservoir::Schema schema(0, stream.fields);
  EventEnvelope env;
  EXPECT_FALSE(DecodeEventEnvelope("short", schema, &env).ok());
  ReplyEnvelope reply;
  EXPECT_FALSE(DecodeReplyEnvelope("x", &reply).ok());
}

class TaskProcessorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/railgun_taskproc_test";
    ASSERT_TRUE(Env::Default()->RemoveDirRecursive(dir_).ok());
    stream_ = PaymentsStream();
    options_.reservoir.chunk_target_bytes = 2048;
    options_.checkpoint_interval_events = 1000000;  // Manual only.
  }

  msg::Message MakeMessage(uint64_t offset, Micros ts, uint64_t id,
                           const std::string& card, double amount) {
    const reservoir::Schema schema(0, stream_.fields);
    EventEnvelope env;
    env.request_id = id;
    env.reply_topic = "replies.x";
    env.event = PaymentEvent(ts, id, card, "m1", amount);
    msg::Message m;
    m.topic = "payments.cardId";
    m.partition = 0;
    m.offset = offset;
    m.key = card;
    EncodeEventEnvelope(env, schema, &m.payload);
    return m;
  }

  std::string dir_;
  StreamDef stream_;
  TaskProcessorOptions options_;
};

TEST_F(TaskProcessorTest, ComputesOnlyQueriesRoutedToItsTopic) {
  TaskProcessor proc(options_, dir_, stream_, "payments.cardId");
  ASSERT_TRUE(proc.Open().ok());
  // The cardId topic computes Q1 (sum + count by card), not Q2.
  EXPECT_EQ(proc.task_plan()->num_metrics(), 2u);

  ReplyEnvelope reply;
  ASSERT_TRUE(
      proc.ProcessMessage(MakeMessage(0, 1000, 1, "cardA", 10.0), &reply)
          .ok());
  ASSERT_EQ(reply.results.size(), 2u);
  EXPECT_EQ(reply.request_id, 1u);
}

TEST_F(TaskProcessorTest, ColumnarBatchMatchesScalarProcessing) {
  // Same event stream through the scalar ProcessMessage path and the
  // columnar ProcessBatch path must produce identical replies and state.
  TaskProcessor scalar(options_, dir_ + "/scalar", stream_,
                       "payments.cardId");
  ASSERT_TRUE(scalar.Open().ok());
  TaskProcessor columnar(options_, dir_ + "/columnar", stream_,
                         "payments.cardId");
  ASSERT_TRUE(columnar.Open().ok());

  std::vector<msg::Message> messages;
  const char* cards[] = {"cardA", "cardA", "cardB", "cardA", "cardB"};
  for (uint64_t i = 0; i < 25; ++i) {
    messages.push_back(MakeMessage(i, 1000 * static_cast<Micros>(i + 1),
                                   i + 1, cards[i % 5],
                                   0.25 * static_cast<double>(i)));
  }

  std::vector<ReplyEnvelope> scalar_replies(messages.size());
  for (size_t i = 0; i < messages.size(); ++i) {
    ASSERT_TRUE(
        scalar.ProcessMessage(messages[i], &scalar_replies[i]).ok());
  }

  msg::MessageBatch batch;
  batch.Adopt(std::move(messages));
  std::vector<ReplyEnvelope> batch_replies;
  size_t failed = 7;
  ASSERT_TRUE(
      columnar.ProcessBatch(batch.views(), &batch_replies, &failed).ok());
  EXPECT_EQ(failed, 0u);
  ASSERT_EQ(batch_replies.size(), scalar_replies.size());
  for (size_t i = 0; i < batch_replies.size(); ++i) {
    EXPECT_EQ(batch_replies[i].request_id, scalar_replies[i].request_id);
    EXPECT_EQ(batch_replies[i].reply_topic, scalar_replies[i].reply_topic);
    ASSERT_EQ(batch_replies[i].results.size(),
              scalar_replies[i].results.size());
    for (size_t r = 0; r < batch_replies[i].results.size(); ++r) {
      EXPECT_EQ(batch_replies[i].results[r].metric_name,
                scalar_replies[i].results[r].metric_name);
      EXPECT_EQ(batch_replies[i].results[r].group_key,
                scalar_replies[i].results[r].group_key);
      EXPECT_DOUBLE_EQ(batch_replies[i].results[r].value.ToNumber(),
                       scalar_replies[i].results[r].value.ToNumber())
          << "message " << i << " metric " << r;
    }
  }
  EXPECT_EQ(columnar.processed_count(), scalar.processed_count());
}

TEST_F(TaskProcessorTest, BatchSkipsUndecodableMessagesAndCounts) {
  TaskProcessor proc(options_, dir_, stream_, "payments.cardId");
  ASSERT_TRUE(proc.Open().ok());

  std::vector<msg::Message> messages;
  messages.push_back(MakeMessage(0, 1000, 1, "cardA", 1.0));
  msg::Message bad = MakeMessage(1, 2000, 2, "cardB", 2.0);
  bad.payload = "not an envelope";
  messages.push_back(std::move(bad));
  messages.push_back(MakeMessage(2, 3000, 3, "cardA", 3.0));

  msg::MessageBatch batch;
  batch.Adopt(std::move(messages));
  std::vector<ReplyEnvelope> replies;
  size_t failed = 0;
  ASSERT_TRUE(proc.ProcessBatch(batch.views(), &replies, &failed).ok());
  EXPECT_EQ(failed, 1u);
  ASSERT_EQ(replies.size(), 3u);
  EXPECT_EQ(replies[0].request_id, 1u);
  EXPECT_EQ(replies[1].request_id, 0u);  // Skipped slot: no reply routed.
  EXPECT_EQ(replies[2].request_id, 3u);
  EXPECT_EQ(proc.processed_count(), 2u);
}

TEST_F(TaskProcessorTest, CheckpointAndRecoveryReplayIsExactlyOnce) {
  {
    TaskProcessor proc(options_, dir_, stream_, "payments.cardId");
    ASSERT_TRUE(proc.Open().ok());
    ReplyEnvelope reply;
    for (uint64_t i = 0; i < 100; ++i) {
      ASSERT_TRUE(proc.ProcessMessage(
                          MakeMessage(i, 1000 * static_cast<Micros>(i + 1),
                                      i + 1, "cardA", 1.0),
                          &reply)
                      .ok());
    }
    ASSERT_TRUE(proc.Checkpoint().ok());
    // 20 more messages after the checkpoint (these will be replayed).
    for (uint64_t i = 100; i < 120; ++i) {
      ASSERT_TRUE(proc.ProcessMessage(
                          MakeMessage(i, 1000 * static_cast<Micros>(i + 1),
                                      i + 1, "cardA", 1.0),
                          &reply)
                      .ok());
    }
    // Last reply before "crash": count = 120.
    EXPECT_DOUBLE_EQ(reply.results[1].value.ToNumber(), 120);
  }

  // Recover: replay must resume at (or before) offset 100 — it may be
  // earlier to rebuild the open chunk lost with the crash — and
  // reconverge without double counting.
  TaskProcessor proc(options_, dir_, stream_, "payments.cardId");
  ASSERT_TRUE(proc.Open().ok());
  EXPECT_LE(proc.replay_offset(), 100u);
  ReplyEnvelope reply;
  for (uint64_t i = proc.replay_offset(); i < 120; ++i) {
    ASSERT_TRUE(proc.ProcessMessage(
                        MakeMessage(i, 1000 * static_cast<Micros>(i + 1),
                                    i + 1, "cardA", 1.0),
                        &reply)
                    .ok());
  }
  // Same result as before the crash: no double counting.
  ASSERT_EQ(reply.results.size(), 2u);
  EXPECT_DOUBLE_EQ(reply.results[1].value.ToNumber(), 120);
  EXPECT_DOUBLE_EQ(reply.results[0].value.ToNumber(), 120.0);
}

TEST_F(TaskProcessorTest, CloneDataBootstrapsAnotherProcessor) {
  {
    TaskProcessor donor(options_, dir_, stream_, "payments.cardId");
    ASSERT_TRUE(donor.Open().ok());
    ReplyEnvelope reply;
    for (uint64_t i = 0; i < 200; ++i) {
      ASSERT_TRUE(donor.ProcessMessage(
                          MakeMessage(i, 1000 * static_cast<Micros>(i + 1),
                                      i + 1, "cardA", 2.0),
                          &reply)
                      .ok());
    }
    ASSERT_TRUE(donor.Checkpoint().ok());
  }

  const std::string target_dir = dir_ + "_target";
  ASSERT_TRUE(Env::Default()->RemoveDirRecursive(target_dir).ok());
  ASSERT_TRUE(
      TaskProcessor::CloneData(Env::Default(), dir_, target_dir).ok());

  TaskProcessor recovered(options_, target_dir, stream_, "payments.cardId");
  ASSERT_TRUE(recovered.Open().ok());
  // Replay resumes early enough to rebuild the donor's lost open chunk.
  EXPECT_LE(recovered.replay_offset(), 200u);

  ReplyEnvelope reply;
  for (uint64_t i = recovered.replay_offset(); i < 200; ++i) {
    ASSERT_TRUE(recovered.ProcessMessage(
                        MakeMessage(i, 1000 * static_cast<Micros>(i + 1),
                                    i + 1, "cardA", 2.0),
                        &reply)
                    .ok());
  }
  ASSERT_TRUE(recovered.ProcessMessage(MakeMessage(200, 201000, 201, "cardA",
                                                   2.0),
                                       &reply)
                  .ok());
  // 5-minute window holds all 201 events (timestamps within 201 ms):
  // no event lost, none double-counted across clone + replay.
  EXPECT_DOUBLE_EQ(reply.results[1].value.ToNumber(), 201);
}

TEST(CoordinatorTest, DonorLookupPrefersActiveThenReplicaThenStale) {
  Coordinator coordinator(2);
  coordinator.RegisterUnitDir("u1", "/data/u1");
  coordinator.RegisterUnitDir("u2", "/data/u2");
  coordinator.RegisterUnitDir("u3", "/data/u3");

  std::vector<msg::MemberInfo> members = {
      {"u1", "node=n1", {}}, {"u2", "node=n2", {}}, {"u3", "node=n3", {}}};
  std::vector<msg::TopicPartition> partitions = {{"t", 0}};
  coordinator.Assign(members, partitions);

  // Someone (not the holder) asks for a donor.
  const msg::TopicPartition task{"t", 0};
  std::string requester = "u3";
  const std::string donor = coordinator.FindDonorDir(task, requester);
  EXPECT_FALSE(donor.empty());
  EXPECT_NE(donor.find(Coordinator::TaskSubdir(task)), std::string::npos);
  // The holder asking for itself must get a *different* unit (or none).
  for (const auto& m : members) {
    const std::string d = coordinator.FindDonorDir(task, m.member_id);
    EXPECT_EQ(d.find("/data/" + m.member_id), std::string::npos);
  }
}

TEST(CoordinatorTest, GenerationAdvancesPerAssign) {
  Coordinator coordinator(1);
  EXPECT_EQ(coordinator.generation(), 0u);
  std::vector<msg::MemberInfo> members = {{"u1", "node=n1", {}}};
  coordinator.Assign(members, {{"t", 0}});
  EXPECT_EQ(coordinator.generation(), 1u);
  coordinator.Assign(members, {{"t", 0}});
  EXPECT_EQ(coordinator.generation(), 2u);
  // Perfectly sticky: nothing moved on the second run.
  EXPECT_EQ(coordinator.total_moved_active(), 1);  // Only the first.
}

}  // namespace
}  // namespace railgun::engine
