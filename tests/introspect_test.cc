// Tests for the self-instrumentation subsystem: registry concurrency,
// deterministic snapshot publication under simulated time, the
// __railgun.internals wire schema, and admission control end to end
// (exact trip depth, release on drain, typed kOverloaded through the
// public client).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "api/client.h"
#include "engine/admission.h"
#include "engine/frontend.h"
#include "introspect/internals.h"
#include "introspect/publisher.h"
#include "introspect/registry.h"
#include "msg/broker.h"

namespace railgun::introspect {
namespace {

using reservoir::FieldType;
using reservoir::FieldValue;

// ----- Registry ------------------------------------------------------

TEST(RegistryTest, HandlesAreSharedAndStable) {
  Registry registry;
  Counter* a = registry.counter("x");
  Counter* b = registry.counter("x");
  EXPECT_EQ(a, b);  // Same name -> one cluster-wide series.
  EXPECT_NE(static_cast<void*>(a),
            static_cast<void*>(registry.gauge("x")));
  a->Add(3);
  EXPECT_EQ(b->value(), 3u);
}

TEST(RegistryTest, SnapshotIsSortedAndExpandsHistograms) {
  Registry registry;
  registry.counter("z.count")->Add(7);
  registry.gauge("a.depth")->Set(-2);
  registry.histogram("m.latency")->Record(100);
  registry.histogram("m.latency")->Record(300);
  // Duplicate probe names sum (two nodes exporting one series).
  registry.AddProbe("p.dup", [] { return 1.5; });
  registry.AddProbe("p.dup", [] { return 2.5; });

  const std::vector<Sample> samples = registry.Snapshot();
  ASSERT_FALSE(samples.empty());
  EXPECT_TRUE(std::is_sorted(
      samples.begin(), samples.end(),
      [](const Sample& l, const Sample& r) { return l.name < r.name; }));

  auto find = [&](const std::string& name) -> const Sample* {
    for (const auto& s : samples) {
      if (s.name == name) return &s;
    }
    return nullptr;
  };
  ASSERT_NE(find("z.count"), nullptr);
  EXPECT_EQ(find("z.count")->kind, "counter");
  EXPECT_DOUBLE_EQ(find("z.count")->value, 7.0);
  ASSERT_NE(find("a.depth"), nullptr);
  EXPECT_DOUBLE_EQ(find("a.depth")->value, -2.0);
  ASSERT_NE(find("p.dup"), nullptr);
  EXPECT_DOUBLE_EQ(find("p.dup")->value, 4.0);
  ASSERT_NE(find("m.latency.count"), nullptr);
  EXPECT_DOUBLE_EQ(find("m.latency.count")->value, 2.0);
  ASSERT_NE(find("m.latency.mean"), nullptr);
  EXPECT_DOUBLE_EQ(find("m.latency.mean")->value, 200.0);
  ASSERT_NE(find("m.latency.max"), nullptr);
  EXPECT_GE(find("m.latency.max")->value, 300.0);
}

// Hot-path handles and Snapshot must be free of data races (run under
// TSAN in CI): writers hammer shared handles while readers snapshot and
// new series appear concurrently.
TEST(RegistryTest, ConcurrentRecordingAndSnapshots) {
  Registry registry;
  registry.AddProbe("probe", [] { return 1.0; });
  constexpr int kWriters = 4;
  constexpr int kIterations = 5000;
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&registry, w] {
      Counter* shared = registry.counter("shared");
      Gauge* depth = registry.gauge("depth");
      Histogram* lat = registry.histogram("lat");
      for (int i = 0; i < kIterations; ++i) {
        shared->Add(1);
        depth->Add(i % 2 == 0 ? 1 : -1);
        lat->Record(i);
        if (i % 1000 == 0) {
          // Fresh series mid-flight: exercises the map lock against
          // concurrent snapshots.
          registry.counter("writer." + std::to_string(w))->Add(1);
        }
      }
    });
  }
  std::thread reader([&registry, &stop] {
    while (!stop.load()) {
      const std::vector<Sample> samples = registry.Snapshot();
      EXPECT_FALSE(samples.empty());
    }
  });
  for (auto& t : threads) t.join();
  stop.store(true);
  reader.join();

  EXPECT_EQ(registry.counter("shared")->value(),
            static_cast<uint64_t>(kWriters) * kIterations);
  EXPECT_EQ(registry.gauge("depth")->value(), 0);
}

// ----- Internals stream schema ---------------------------------------

TEST(InternalsTest, EventRoundTripsThroughWireEnvelope) {
  const engine::StreamDef def = InternalsStreamDef();
  ASSERT_EQ(def.name, std::string(kInternalsStream));
  ASSERT_EQ(def.partitioners, std::vector<std::string>{"node"});

  InternalsSample in{"node3", "frontend.pending", "gauge", 42.5};
  engine::EventEnvelope envelope;
  envelope.event = MakeInternalsEvent(in, /*timestamp=*/12345, /*id=*/99);

  const reservoir::Schema schema(0, def.fields);
  std::string wire;
  engine::EncodeEventEnvelope(envelope, schema, &wire);
  engine::EventEnvelope decoded;
  ASSERT_TRUE(
      engine::DecodeEventEnvelope(Slice(wire), schema, &decoded).ok());
  EXPECT_EQ(decoded.event.timestamp, 12345);
  EXPECT_EQ(decoded.event.id, 99u);

  InternalsSample out;
  ASSERT_TRUE(ParseInternalsEvent(decoded.event, &out).ok());
  EXPECT_EQ(out.node, in.node);
  EXPECT_EQ(out.metric, in.metric);
  EXPECT_EQ(out.kind, in.kind);
  EXPECT_DOUBLE_EQ(out.value, in.value);

  // Arity/type mismatches are typed Corruption, not UB.
  reservoir::Event truncated = envelope.event;
  truncated.values.pop_back();
  EXPECT_TRUE(ParseInternalsEvent(truncated, &out).IsCorruption());
}

// ----- Publisher under simulated time --------------------------------

TEST(PublisherTest, SnapshotsAreDeterministicUnderSimulatedClock) {
  SimulatedClock clock(5 * kMicrosPerSecond);
  msg::BusOptions bus_options;
  bus_options.delivery_delay = 0;
  bus_options.clock = &clock;
  msg::MessageBus bus(bus_options);

  Registry registry;
  registry.counter("events")->Add(10);
  registry.gauge("depth")->Set(3);

  PublisherOptions options;
  options.node = "sim-node";
  Publisher publisher(options, &registry, &bus, &clock);
  ASSERT_TRUE(publisher.Start().ok());  // Sim clock: no thread.

  ASSERT_TRUE(publisher.PublishOnce().ok());
  clock.Advance(kMicrosPerSecond);
  registry.counter("events")->Add(5);
  ASSERT_TRUE(publisher.PublishOnce().ok());
  publisher.Stop();
  EXPECT_EQ(publisher.published_samples(), 4u);

  const engine::StreamDef def = InternalsStreamDef();
  const msg::TopicPartition tp{def.TopicFor("node"), 0};
  std::vector<msg::Message> messages;
  ASSERT_TRUE(bus.Fetch(tp, 0, 1024, &messages).ok());
  ASSERT_EQ(messages.size(), 4u);

  const reservoir::Schema schema(0, def.fields);
  std::vector<uint64_t> ids;
  std::vector<InternalsSample> samples;
  for (const auto& message : messages) {
    engine::EventEnvelope envelope;
    ASSERT_TRUE(engine::DecodeEventEnvelope(Slice(message.payload), schema,
                                            &envelope)
                    .ok());
    EXPECT_EQ(envelope.request_id, 0u);  // Fire-and-forget.
    ids.push_back(envelope.event.id);
    InternalsSample sample;
    ASSERT_TRUE(ParseInternalsEvent(envelope.event, &sample).ok());
    EXPECT_EQ(sample.node, "sim-node");
    samples.push_back(std::move(sample));
  }
  // Ids must be distinct across ticks: the reservoirs dedup by id, so a
  // reused id would silently drop the second tick's sample.
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::unique(ids.begin(), ids.end()), ids.end());

  // Tick 1 snapshot (sorted by name): depth, events. Tick 2 reflects
  // the counter increment — same registry state in, same rows out.
  ASSERT_EQ(samples[0].metric, "depth");
  EXPECT_DOUBLE_EQ(samples[0].value, 3.0);
  ASSERT_EQ(samples[1].metric, "events");
  EXPECT_DOUBLE_EQ(samples[1].value, 10.0);
  EXPECT_DOUBLE_EQ(samples[3].value, 15.0);
}

// ----- Admission control ---------------------------------------------

TEST(AdmissionTest, RetryAfterHintRoundTrips) {
  engine::AdmissionOptions options;
  options.max_pending = 2;
  options.retry_after = 75 * kMicrosPerMilli;
  engine::AdmissionController controller(options);
  EXPECT_TRUE(controller.Admit(1, 0, 0).ok());
  const Status shed = controller.Admit(2, 0, 0);
  ASSERT_TRUE(shed.IsOverloaded());
  EXPECT_EQ(engine::RetryAfterMicros(shed), 75 * kMicrosPerMilli);
  EXPECT_EQ(controller.shed_count(), 1u);
  // Non-overloaded statuses carry no hint.
  EXPECT_EQ(engine::RetryAfterMicros(Status::OK()), 0);
  EXPECT_EQ(engine::RetryAfterMicros(Status::Unavailable("x")), 0);
}

TEST(AdmissionTest, TokenBucketPacesAndHonorsPenalty) {
  SimulatedClock clock(kMicrosPerSecond);
  // 1000 tokens/sec, burst 2.
  engine::TokenBucket bucket(1000.0, 2.0, &clock);
  EXPECT_TRUE(bucket.Acquire().ok());
  EXPECT_TRUE(bucket.Acquire().ok());
  EXPECT_TRUE(bucket.Acquire().IsOverloaded());
  EXPECT_EQ(bucket.rejected_count(), 1u);

  clock.Advance(kMicrosPerMilli);  // Refills exactly one token.
  EXPECT_TRUE(bucket.Acquire().ok());
  EXPECT_TRUE(bucket.Acquire().IsOverloaded());

  // A server shed hint freezes refill for the whole window...
  bucket.Penalize(10 * kMicrosPerMilli);
  clock.Advance(5 * kMicrosPerMilli);
  EXPECT_TRUE(bucket.Acquire().IsOverloaded());
  // ...and refill resumes only after it elapses.
  clock.Advance(6 * kMicrosPerMilli);
  EXPECT_TRUE(bucket.Acquire().ok());
}

engine::StreamDef PaymentsStream() {
  engine::StreamDef stream;
  stream.name = "payments";
  stream.fields = {{"cardId", FieldType::kString},
                   {"amount", FieldType::kDouble}};
  stream.partitioners = {"cardId"};
  stream.partitions_per_topic = 1;
  return stream;
}

reservoir::Event PaymentEvent(uint64_t id) {
  reservoir::Event event;
  event.timestamp = 1000;
  event.id = id;
  event.values = {FieldValue("card1"), FieldValue(1.0)};
  return event;
}

// The ceiling is exact: with max_pending = N, exactly N submissions are
// admitted, the N+1-th sheds typed, and draining the table (here via
// the request timeout — no consumers ever reply) re-opens the door.
TEST(AdmissionTest, FrontEndShedsAtExactDepthAndReleasesOnDrain) {
  msg::BusOptions bus_options;
  bus_options.delivery_delay = 0;
  msg::MessageBus bus(bus_options);

  engine::FrontEndOptions options;
  options.request_timeout = 30 * kMicrosPerMilli;
  options.admission.max_pending = 4;
  engine::FrontEnd frontend(options, "node0", &bus,
                            MonotonicClock::Default());
  ASSERT_TRUE(frontend.Start().ok());
  ASSERT_TRUE(frontend.RegisterStream(PaymentsStream()).ok());

  std::atomic<int> completed{0};
  auto callback = [&completed](Status,
                               const std::vector<engine::MetricReply>&) {
    completed.fetch_add(1);
  };
  for (uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(frontend.Submit("payments", PaymentEvent(i), callback).ok());
  }
  EXPECT_EQ(frontend.pending_count(), 4u);
  const Status shed = frontend.Submit("payments", PaymentEvent(5), callback);
  ASSERT_TRUE(shed.IsOverloaded());
  EXPECT_GT(engine::RetryAfterMicros(shed), 0);
  EXPECT_EQ(frontend.shed_count(), 1u);

  // Timeouts drain the pending table; admission must release.
  for (int i = 0; i < 500 && frontend.pending_count() > 0; ++i) {
    MonotonicClock::Default()->SleepMicros(10 * kMicrosPerMilli);
  }
  ASSERT_EQ(frontend.pending_count(), 0u);
  EXPECT_EQ(completed.load(), 4);
  EXPECT_TRUE(frontend.Submit("payments", PaymentEvent(6), callback).ok());
  frontend.Stop();
  EXPECT_EQ(frontend.shed_count(), 1u);
}

// kOverloaded must surface through the public client as an
// already-completed future, not an exception or a hang.
TEST(AdmissionTest, OverloadedSurfacesThroughResultFuture) {
  api::ClientOptions options;
  options.base_dir = "/tmp/railgun-introspect-overload";
  options.num_nodes = 1;
  // No processor units: accepted requests stay pending until timeout,
  // so the second submit deterministically finds the table full.
  options.processor_units_per_node = 0;
  options.admission.max_pending = 1;
  api::Client client(options);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client
                  .CreateStream("CREATE STREAM payments (cardId STRING, "
                                "amount DOUBLE) PARTITION BY cardId")
                  .ok());

  const api::Row row =
      api::Row().Set("cardId", "c1").Set("amount", FieldValue(1.0));
  api::ResultFuture accepted = client.Submit("payments", row);
  api::ResultFuture refused = client.Submit("payments", row);
  const api::EventResult result = refused.Get();
  ASSERT_TRUE(result.status.IsOverloaded());
  EXPECT_GT(engine::RetryAfterMicros(result.status), 0);
  client.Stop();  // Completes `accepted` with Unavailable.
  EXPECT_FALSE(accepted.Get().status.ok());
}

}  // namespace
}  // namespace railgun::introspect
