// Tests for the event reservoir: chunking, serialization, iteration,
// dedup, out-of-order handling, caching/prefetch, recovery, truncation,
// schema evolution and replica copy.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/env.h"
#include "reservoir/reservoir.h"

namespace railgun::reservoir {
namespace {

Event MakeEvent(Micros ts, uint64_t id, const std::string& card,
                double amount) {
  Event e;
  e.timestamp = ts;
  e.id = id;
  e.offset = id;
  e.values = {FieldValue(card), FieldValue(amount)};
  return e;
}

class ReservoirTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/railgun_reservoir_test";
    ASSERT_TRUE(Env::Default()->RemoveDirRecursive(dir_).ok());
    options_.chunk_target_bytes = 1024;
    options_.segment_max_bytes = 16 * 1024;
    options_.cache_capacity = 8;
    options_.async_io = false;  // Deterministic for unit tests.
    options_.schema_fields = {{"card", FieldType::kString},
                              {"amount", FieldType::kDouble}};
  }

  void Open() {
    reservoir_ = std::make_unique<Reservoir>(options_, dir_);
    ASSERT_TRUE(reservoir_->Open().ok());
  }

  std::string dir_;
  ReservoirOptions options_;
  std::unique_ptr<Reservoir> reservoir_;
};

TEST_F(ReservoirTest, AppendAndIterateInOrder) {
  Open();
  const int n = 1000;
  for (int i = 0; i < n; ++i) {
    bool accepted = false;
    ASSERT_TRUE(reservoir_
                    ->Append(MakeEvent(i * 1000, i + 1, "c", i * 1.0),
                             &accepted)
                    .ok());
    EXPECT_TRUE(accepted);
  }
  auto iter = reservoir_->NewIterator();
  int count = 0;
  Micros prev = -1;
  while (!iter->AtEnd()) {
    EXPECT_GE(iter->event().timestamp, prev);
    prev = iter->event().timestamp;
    ++count;
    iter->Advance();
  }
  EXPECT_EQ(count, n);
  EXPECT_GT(reservoir_->stats().chunks_closed, 1u);
}

TEST_F(ReservoirTest, DeduplicatesByIdAgainstInMemoryChunks) {
  Open();
  bool accepted = false;
  ASSERT_TRUE(
      reservoir_->Append(MakeEvent(1000, 42, "c", 1.0), &accepted).ok());
  EXPECT_TRUE(accepted);
  ASSERT_TRUE(
      reservoir_->Append(MakeEvent(2000, 42, "c", 2.0), &accepted).ok());
  EXPECT_FALSE(accepted);  // Same id, dropped.
  EXPECT_EQ(reservoir_->stats().dedup_drops, 1u);
}

TEST_F(ReservoirTest, LateEventRewrittenByDefault) {
  Open();
  bool accepted;
  // Fill enough to close at least one chunk.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(reservoir_
                    ->Append(MakeEvent(i * 10000, i + 1, "card", 1.0),
                             &accepted)
                    .ok());
  }
  ASSERT_GT(reservoir_->stats().chunks_closed, 0u);
  // An event far in the past (before the last closed chunk).
  ASSERT_TRUE(
      reservoir_->Append(MakeEvent(5, 9999, "late", 1.0), &accepted).ok());
  EXPECT_TRUE(accepted);
  EXPECT_EQ(reservoir_->stats().late_rewrites, 1u);
}

TEST_F(ReservoirTest, LateEventDiscardedUnderDiscardPolicy) {
  options_.late_policy = LateEventPolicy::kDiscard;
  Open();
  bool accepted;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(reservoir_
                    ->Append(MakeEvent(i * 10000, i + 1, "card", 1.0),
                             &accepted)
                    .ok());
  }
  ASSERT_TRUE(
      reservoir_->Append(MakeEvent(5, 9999, "late", 1.0), &accepted).ok());
  EXPECT_FALSE(accepted);
  EXPECT_EQ(reservoir_->stats().late_drops, 1u);
}

TEST_F(ReservoirTest, GraceWindowAcceptsLateEventsIntoTransitionChunks) {
  options_.ooo_grace = 60 * kMicrosPerSecond;
  Open();
  bool accepted;
  for (int i = 0; i < 400; ++i) {
    ASSERT_TRUE(reservoir_
                    ->Append(MakeEvent(i * kMicrosPerSecond, i + 1, "c", 1.0),
                             &accepted)
                    .ok());
  }
  const auto before = reservoir_->stats();
  ASSERT_GT(before.chunks_closed, 0u);
  // A late event inside the grace range (older than the open chunk but
  // covered by a transition chunk) lands there instead of rewriting.
  ASSERT_TRUE(reservoir_
                  ->Append(MakeEvent(350 * kMicrosPerSecond, 10001, "late",
                                     2.0),
                           &accepted)
                  .ok());
  EXPECT_TRUE(accepted);
  EXPECT_GT(reservoir_->stats().late_transition_adds, 0u);
  EXPECT_EQ(reservoir_->stats().late_rewrites, before.late_rewrites);
}

TEST_F(ReservoirTest, TransitionChunkEventsSortedOnClose) {
  options_.ooo_grace = 30 * kMicrosPerSecond;
  Open();
  bool accepted;
  // Interleave timestamps so late events must be re-sorted on close.
  for (int i = 0; i < 2000; ++i) {
    const Micros jitter = (i % 7) * 100;
    ASSERT_TRUE(
        reservoir_
            ->Append(MakeEvent(i * 10000 - jitter, i + 1, "c", 1.0),
                     &accepted)
            .ok());
  }
  auto iter = reservoir_->NewIterator();
  Micros prev = INT64_MIN;
  int out_of_order = 0;
  int total = 0;
  while (!iter->AtEnd()) {
    if (iter->event().timestamp < prev) ++out_of_order;
    // Only closed chunks guarantee order; tolerate the open tail.
    prev = iter->event().timestamp;
    ++total;
    iter->Advance();
  }
  EXPECT_GT(total, 1900);
  // Closed chunks are sorted; the open chunk may hold a short
  // out-of-order tail, bounded by one chunk's worth of events.
  EXPECT_LT(out_of_order, 60);
}

TEST_F(ReservoirTest, SeekByTimestamp) {
  Open();
  bool accepted;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(reservoir_
                    ->Append(MakeEvent(i * 1000, i + 1, "c", 1.0), &accepted)
                    .ok());
  }
  auto iter = reservoir_->NewIteratorAt(500000);
  ASSERT_FALSE(iter->AtEnd());
  EXPECT_EQ(iter->event().timestamp, 500000);

  auto past_end = reservoir_->NewIteratorAt(10 * kMicrosPerDay);
  EXPECT_TRUE(past_end->AtEnd());

  auto from_zero = reservoir_->NewIteratorAt(0);
  ASSERT_FALSE(from_zero->AtEnd());
  EXPECT_EQ(from_zero->event().timestamp, 0);
}

TEST_F(ReservoirTest, IteratorPositionRestore) {
  Open();
  bool accepted;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(reservoir_
                    ->Append(MakeEvent(i * 1000, i + 1, "c", 1.0), &accepted)
                    .ok());
  }
  auto iter = reservoir_->NewIterator();
  for (int i = 0; i < 357; ++i) iter->Advance();
  const Micros expected_ts = iter->event().timestamp;
  auto restored = reservoir_->NewIteratorAtPosition(iter->chunk_seq(),
                                                    iter->index());
  ASSERT_FALSE(restored->AtEnd());
  EXPECT_EQ(restored->event().timestamp, expected_ts);
}

TEST_F(ReservoirTest, RecoveryAfterReopenKeepsPersistedEvents) {
  Open();
  bool accepted;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(reservoir_
                    ->Append(MakeEvent(i * 1000, i + 1, "c", 1.0), &accepted)
                    .ok());
  }
  const uint64_t persisted = reservoir_->LastPersistedOffset();
  EXPECT_GT(persisted, 0u);
  reservoir_.reset();

  Open();
  EXPECT_EQ(reservoir_->LastPersistedOffset(), persisted);
  auto iter = reservoir_->NewIterator();
  uint64_t count = 0;
  while (!iter->AtEnd()) {
    ++count;
    iter->Advance();
  }
  EXPECT_EQ(count, persisted);  // Offsets are 1-based ids here.
}

TEST_F(ReservoirTest, EagerPrefetchKeepsSyncLoadsLowUnderPacedReads) {
  options_.async_io = true;
  options_.cache_capacity = 4;
  Open();
  bool accepted;
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(reservoir_
                    ->Append(MakeEvent(i * 1000, i + 1, "c", 1.0), &accepted)
                    .ok());
  }
  ASSERT_TRUE(reservoir_->Sync().ok());

  auto iter = reservoir_->NewIterator();
  int count = 0;
  while (!iter->AtEnd()) {
    ++count;
    iter->Advance();
    // Paced reader: gives the prefetcher time, as a real 500 ev/s
    // workload would.
    if (count % 20 == 0) MonotonicClock::Default()->SleepMicros(300);
  }
  EXPECT_EQ(count, 3000);
  const auto stats = reservoir_->stats();
  EXPECT_GT(stats.prefetches_issued, 0u);
  // With prefetch, most chunk transitions should not be synchronous
  // loads.
  EXPECT_LT(stats.sync_chunk_loads, stats.chunks_written);
}

TEST_F(ReservoirTest, TruncateBeforeDropsOldSegments) {
  Open();
  bool accepted;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(reservoir_
                    ->Append(MakeEvent(i * 1000, i + 1, "c", 1.0), &accepted)
                    .ok());
  }
  std::vector<std::string> before;
  ASSERT_TRUE(Env::Default()->ListDir(dir_, &before).ok());
  ASSERT_TRUE(reservoir_->TruncateBefore(4000 * 1000).ok());
  std::vector<std::string> after;
  ASSERT_TRUE(Env::Default()->ListDir(dir_, &after).ok());
  EXPECT_LT(after.size(), before.size());

  // Iterating from the start now begins at a later event.
  auto iter = reservoir_->NewIterator();
  ASSERT_FALSE(iter->AtEnd());
  EXPECT_GT(iter->event().timestamp, 0);
}

TEST_F(ReservoirTest, SchemaEvolutionOldChunksStillDecode) {
  Open();
  bool accepted;
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(reservoir_
                    ->Append(MakeEvent(i * 1000, i + 1, "c", 1.0), &accepted)
                    .ok());
  }
  reservoir_.reset();

  // Reopen with an extended schema.
  options_.schema_fields = {{"card", FieldType::kString},
                            {"amount", FieldType::kDouble},
                            {"country", FieldType::kString}};
  Open();
  EXPECT_EQ(reservoir_->schema()->num_fields(), 3u);

  Event e;
  e.timestamp = 600 * 1000;
  e.id = 10001;
  e.offset = 10001;
  e.values = {FieldValue("c"), FieldValue(9.0), FieldValue("PT")};
  ASSERT_TRUE(reservoir_->Append(e, &accepted).ok());

  // Old events (2 fields) and new events (3 fields) both iterate.
  auto iter = reservoir_->NewIterator();
  int old_schema = 0, new_schema = 0;
  while (!iter->AtEnd()) {
    if (iter->event().values.size() == 2) {
      ++old_schema;
    } else {
      ++new_schema;
    }
    iter->Advance();
  }
  EXPECT_GT(old_schema, 400);
  EXPECT_EQ(new_schema, 1);
}

TEST_F(ReservoirTest, CopyMissingToBootstrapsAReplica) {
  Open();
  bool accepted;
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(reservoir_
                    ->Append(MakeEvent(i * 1000, i + 1, "c", 1.0), &accepted)
                    .ok());
  }
  const std::string replica_dir = dir_ + "_replica";
  ASSERT_TRUE(Env::Default()->RemoveDirRecursive(replica_dir).ok());
  ASSERT_TRUE(reservoir_->CopyMissingTo(replica_dir).ok());

  Reservoir replica(options_, replica_dir);
  ASSERT_TRUE(replica.Open().ok());
  EXPECT_EQ(replica.LastPersistedOffset(),
            reservoir_->LastPersistedOffset());

  // Append more and delta-copy: only new segments transfer.
  for (int i = 2000; i < 4000; ++i) {
    ASSERT_TRUE(reservoir_
                    ->Append(MakeEvent(i * 1000, i + 1, "c", 1.0), &accepted)
                    .ok());
  }
  ASSERT_TRUE(reservoir_->CopyMissingTo(replica_dir).ok());
  Reservoir replica2(options_, replica_dir);
  ASSERT_TRUE(replica2.Open().ok());
  EXPECT_EQ(replica2.LastPersistedOffset(),
            reservoir_->LastPersistedOffset());
}

TEST_F(ReservoirTest, ChunkSerializationRoundTrip) {
  Schema schema(1, {{"card", FieldType::kString},
                    {"amount", FieldType::kDouble}});
  Chunk chunk(7, 1);
  for (int i = 0; i < 100; ++i) {
    chunk.Add(MakeEvent(1000 + i, i + 1, "card" + std::to_string(i), i * 2.5));
  }
  chunk.Close();
  std::string payload;
  chunk.SerializeTo(schema, &payload);

  std::unique_ptr<Chunk> decoded;
  ASSERT_TRUE(Chunk::Deserialize(7, schema, payload, &decoded).ok());
  ASSERT_EQ(decoded->num_events(), 100u);
  EXPECT_EQ(decoded->min_timestamp(), chunk.min_timestamp());
  EXPECT_EQ(decoded->max_timestamp(), chunk.max_timestamp());
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(decoded->event(i).id, chunk.event(i).id);
    EXPECT_EQ(decoded->event(i).values[0].as_string(),
              chunk.event(i).values[0].as_string());
    EXPECT_EQ(decoded->event(i).values[1].as_double(),
              chunk.event(i).values[1].as_double());
  }
}

TEST(ChunkCacheTest, LruEvictionAndStats) {
  ChunkCache cache(3);
  for (ChunkSeq seq = 1; seq <= 5; ++seq) {
    cache.Insert(std::make_shared<Chunk>(seq, 1));
  }
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.Get(1), nullptr);  // Evicted.
  EXPECT_EQ(cache.Get(2), nullptr);  // Evicted.
  EXPECT_NE(cache.Get(5), nullptr);

  // Touch 3 so 4 becomes LRU.
  ASSERT_NE(cache.Get(3), nullptr);
  cache.Insert(std::make_shared<Chunk>(6, 1));
  EXPECT_EQ(cache.Get(4), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);

  const auto stats = cache.stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
}

TEST(EventCodecTest, AllFieldTypesRoundTrip) {
  Schema schema(1, {{"i", FieldType::kInt64},
                    {"d", FieldType::kDouble},
                    {"s", FieldType::kString},
                    {"b", FieldType::kBool}});
  Event e;
  e.timestamp = 123456789;
  e.id = 77;
  e.offset = 88;
  e.values = {FieldValue(int64_t{-42}), FieldValue(3.25),
              FieldValue("hello"), FieldValue(true)};

  std::string buf;
  EventCodec codec(&schema);
  codec.Encode(e, 123000000, &buf);

  Slice in(buf);
  Event decoded;
  ASSERT_TRUE(codec.Decode(&in, 123000000, &decoded).ok());
  EXPECT_EQ(decoded.timestamp, e.timestamp);
  EXPECT_EQ(decoded.id, e.id);
  EXPECT_EQ(decoded.offset, e.offset);
  EXPECT_EQ(decoded.values[0].as_int(), -42);
  EXPECT_EQ(decoded.values[1].as_double(), 3.25);
  EXPECT_EQ(decoded.values[2].as_string(), "hello");
  EXPECT_TRUE(decoded.values[3].as_bool());
}

TEST(SchemaRegistryTest, PersistsAcrossReopen) {
  const std::string dir = "/tmp/railgun_schema_registry_test";
  ASSERT_TRUE(Env::Default()->RemoveDirRecursive(dir).ok());
  {
    SchemaRegistry registry(Env::Default(), dir);
    ASSERT_TRUE(registry.Open().ok());
    EXPECT_EQ(registry.Current(), nullptr);
    auto id1 = registry.Register({{"a", FieldType::kInt64}});
    ASSERT_TRUE(id1.ok());
    auto id2 = registry.Register(
        {{"a", FieldType::kInt64}, {"b", FieldType::kString}});
    ASSERT_TRUE(id2.ok());
    EXPECT_NE(id1.value(), id2.value());
    EXPECT_EQ(registry.current_id(), id2.value());
  }
  {
    SchemaRegistry registry(Env::Default(), dir);
    ASSERT_TRUE(registry.Open().ok());
    EXPECT_EQ(registry.size(), 2u);
    ASSERT_NE(registry.Current(), nullptr);
    EXPECT_EQ(registry.Current()->num_fields(), 2u);
    ASSERT_NE(registry.Get(1), nullptr);
    EXPECT_EQ(registry.Get(1)->num_fields(), 1u);
  }
}

}  // namespace
}  // namespace railgun::reservoir
