// Unit tests for src/common: status, coding, crc, compression,
// histogram, random, env.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/coding.h"
#include "common/compression.h"
#include "common/crc32c.h"
#include "common/env.h"
#include "common/hash.h"
#include "common/histogram.h"
#include "common/random.h"
#include "common/status.h"

namespace railgun {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCodesAndMessages) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Busy("x").IsBusy());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_EQ(Status::NotFound("missing").ToString(), "NotFound: missing");
}

TEST(StatusTest, StatusOrHoldsValueOrError) {
  StatusOr<int> ok_value(42);
  ASSERT_TRUE(ok_value.ok());
  EXPECT_EQ(*ok_value, 42);

  StatusOr<int> error(Status::NotFound("nope"));
  EXPECT_FALSE(error.ok());
  EXPECT_TRUE(error.status().IsNotFound());
}

TEST(CodingTest, FixedRoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0xdeadbeefu);
  PutFixed64(&buf, 0x0123456789abcdefull);
  Slice in(buf);
  uint32_t v32;
  uint64_t v64;
  ASSERT_TRUE(GetFixed32(&in, &v32));
  ASSERT_TRUE(GetFixed64(&in, &v64));
  EXPECT_EQ(v32, 0xdeadbeefu);
  EXPECT_EQ(v64, 0x0123456789abcdefull);
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, VarintRoundTripBoundaries) {
  const uint64_t cases[] = {0,    1,    127,  128,   16383, 16384,
                            1u << 21,   1ull << 42, UINT64_MAX};
  std::string buf;
  for (uint64_t v : cases) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t expected : cases) {
    uint64_t v;
    ASSERT_TRUE(GetVarint64(&in, &v));
    EXPECT_EQ(v, expected);
  }
}

TEST(CodingTest, ZigZagHandlesNegatives) {
  const int64_t cases[] = {0, -1, 1, -64, 64, INT64_MIN, INT64_MAX};
  std::string buf;
  for (int64_t v : cases) PutVarsint64(&buf, v);
  Slice in(buf);
  for (int64_t expected : cases) {
    int64_t v;
    ASSERT_TRUE(GetVarsint64(&in, &v));
    EXPECT_EQ(v, expected);
  }
}

TEST(CodingTest, SmallNegativesEncodeSmall) {
  std::string buf;
  PutVarsint64(&buf, -3);
  EXPECT_EQ(buf.size(), 1u);
}

TEST(CodingTest, LengthPrefixedSlice) {
  std::string buf;
  PutLengthPrefixedSlice(&buf, "hello");
  PutLengthPrefixedSlice(&buf, "");
  PutLengthPrefixedSlice(&buf, std::string(1000, 'x'));
  Slice in(buf);
  Slice a, b, c;
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &a));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &b));
  ASSERT_TRUE(GetLengthPrefixedSlice(&in, &c));
  EXPECT_EQ(a.ToString(), "hello");
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(c.size(), 1000u);
}

TEST(CodingTest, TruncatedInputFails) {
  std::string buf;
  PutVarint64(&buf, 1234567);
  Slice in(buf.data(), 1);  // Cut mid-varint.
  uint64_t v;
  EXPECT_FALSE(GetVarint64(&in, &v));
}

TEST(Crc32cTest, KnownProperties) {
  // Distinct inputs produce distinct CRCs; same input is stable.
  const uint32_t a = crc32c::Value("hello", 5);
  const uint32_t b = crc32c::Value("hellp", 5);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, crc32c::Value("hello", 5));
  // Extend over split input equals whole input.
  const uint32_t whole = crc32c::Value("hello world", 11);
  const uint32_t split = crc32c::Extend(crc32c::Value("hello ", 6),
                                        "world", 5);
  EXPECT_EQ(whole, split);
}

TEST(Crc32cTest, MaskUnmaskRoundTrip) {
  const uint32_t crc = crc32c::Value("data", 4);
  EXPECT_NE(crc, crc32c::Mask(crc));
  EXPECT_EQ(crc, crc32c::Unmask(crc32c::Mask(crc)));
}

class CompressionRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(CompressionRoundTrip, RoundTrips) {
  Random64 rng(GetParam());
  std::string input;
  const int mode = GetParam() % 4;
  const size_t n = 100 + rng.Uniform(100000);
  input.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    switch (mode) {
      case 0:  // Highly repetitive.
        input.push_back(static_cast<char>('a' + (i % 3)));
        break;
      case 1:  // Random (incompressible).
        input.push_back(static_cast<char>(rng.Uniform(256)));
        break;
      case 2:  // Runs.
        input.append(std::string(rng.Uniform(40) + 1,
                                 static_cast<char>(rng.Uniform(256))));
        break;
      default:  // Structured text.
        input += "field" + std::to_string(i % 50) + "=value;";
        break;
    }
  }
  std::string compressed;
  LzCompress(input, &compressed);
  EXPECT_EQ(LzUncompressedSize(compressed),
            static_cast<int64_t>(input.size()));
  std::string output;
  ASSERT_TRUE(LzUncompress(compressed, &output).ok());
  EXPECT_EQ(output, input);
}

INSTANTIATE_TEST_SUITE_P(Modes, CompressionRoundTrip,
                         ::testing::Range(0, 16));

TEST(CompressionTest, EmptyInput) {
  std::string compressed, output;
  LzCompress(Slice(), &compressed);
  ASSERT_TRUE(LzUncompress(compressed, &output).ok());
  EXPECT_TRUE(output.empty());
}

TEST(CompressionTest, CompressesRepetitiveData) {
  const std::string input(100000, 'z');
  std::string compressed;
  LzCompress(input, &compressed);
  EXPECT_LT(compressed.size(), input.size() / 10);
}

TEST(CompressionTest, CorruptInputRejected) {
  const std::string input = "some compressible compressible data data";
  std::string compressed;
  LzCompress(input, &compressed);
  std::string truncated = compressed.substr(0, compressed.size() / 2);
  std::string output;
  EXPECT_FALSE(LzUncompress(truncated, &output).ok());
}

TEST(HistogramTest, PercentilesOfUniformData) {
  LatencyHistogram hist;
  for (int i = 1; i <= 10000; ++i) hist.Record(i);
  EXPECT_EQ(hist.Count(), 10000);
  EXPECT_EQ(hist.Min(), 1);
  EXPECT_EQ(hist.Max(), 10000);
  // Log-bucketed: allow ~1% relative error.
  EXPECT_NEAR(static_cast<double>(hist.ValueAtPercentile(50)), 5000, 100);
  EXPECT_NEAR(static_cast<double>(hist.ValueAtPercentile(99)), 9900, 150);
  EXPECT_EQ(hist.ValueAtPercentile(100), 10000);
}

TEST(HistogramTest, EmptyHistogram) {
  LatencyHistogram hist;
  EXPECT_EQ(hist.Count(), 0);
  EXPECT_EQ(hist.ValueAtPercentile(99), 0);
  EXPECT_EQ(hist.Mean(), 0.0);
}

TEST(HistogramTest, CoordinatedOmissionCorrection) {
  LatencyHistogram corrected;
  // One 10 ms stall at a 1 ms expected interval should synthesize the
  // latencies of the ~9 requests that would have queued behind it.
  corrected.RecordCorrected(10000, 1000);
  EXPECT_GT(corrected.Count(), 5);
  LatencyHistogram raw;
  raw.Record(10000);
  EXPECT_EQ(raw.Count(), 1);
}

TEST(HistogramTest, MergeCombinesDistributions) {
  LatencyHistogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 200);
  EXPECT_LE(a.ValueAtPercentile(40), 11);
  EXPECT_GE(a.ValueAtPercentile(90), 990);
}

TEST(HistogramTest, LargeValuesBounded) {
  LatencyHistogram hist;
  hist.Record(int64_t{1} << 40);
  EXPECT_EQ(hist.ValueAtPercentile(100), int64_t{1} << 40);
}

TEST(RandomTest, Deterministic) {
  Random64 a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, UniformInRange) {
  Random64 rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, ZipfSkewsTowardSmallValues) {
  ZipfGenerator zipf(1000, 0.99, 5);
  int head = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (zipf.Next() < 10) ++head;
  }
  // The top-10 of 1000 items should capture a disproportionate share.
  EXPECT_GT(head, n / 10);
}

TEST(HashTest, StableAndSpreading) {
  EXPECT_EQ(Hash64("abc"), Hash64("abc"));
  EXPECT_NE(Hash64("abc"), Hash64("abd"));
  EXPECT_NE(Hash64("abc", 1), Hash64("abc", 2));
}

TEST(ClockTest, SimulatedClockAdvances) {
  SimulatedClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 150);
  clock.SleepMicros(25);
  EXPECT_EQ(clock.NowMicros(), 175);
  clock.SetTime(0);
  EXPECT_EQ(clock.NowMicros(), 0);
}

TEST(ClockTest, MonotonicClockMovesForward) {
  MonotonicClock clock;
  const Micros a = clock.NowMicros();
  clock.SleepMicros(1000);
  const Micros b = clock.NowMicros();
  EXPECT_GE(b - a, 900);
}

TEST(EnvTest, FileRoundTripAndListing) {
  Env* env = Env::Default();
  const std::string dir = "/tmp/railgun_env_test";
  ASSERT_TRUE(env->RemoveDirRecursive(dir).ok());
  ASSERT_TRUE(env->CreateDir(dir + "/nested/deeply").ok());
  ASSERT_TRUE(env->FileExists(dir + "/nested/deeply"));

  ASSERT_TRUE(WriteStringToFile(env, "hello world", dir + "/f1").ok());
  std::string content;
  ASSERT_TRUE(ReadFileToString(env, dir + "/f1", &content).ok());
  EXPECT_EQ(content, "hello world");

  uint64_t size;
  ASSERT_TRUE(env->GetFileSize(dir + "/f1", &size).ok());
  EXPECT_EQ(size, 11u);

  ASSERT_TRUE(env->CopyFile(dir + "/f1", dir + "/f2").ok());
  ASSERT_TRUE(env->RenameFile(dir + "/f2", dir + "/f3").ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env->ListDir(dir, &children).ok());
  EXPECT_EQ(children.size(), 3u);  // f1, f3, nested.

  EXPECT_TRUE(env->RemoveFile(dir + "/missing").IsNotFound());
  ASSERT_TRUE(env->RemoveDirRecursive(dir).ok());
  EXPECT_FALSE(env->FileExists(dir));
}

TEST(EnvTest, AppendableFilePreservesContent) {
  Env* env = Env::Default();
  const std::string path = "/tmp/railgun_env_append_test";
  (void)env->RemoveFile(path);
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env->NewWritableFile(path, &f).ok());
    ASSERT_TRUE(f->Append("part1").ok());
    ASSERT_TRUE(f->Close().ok());
  }
  {
    std::unique_ptr<WritableFile> f;
    ASSERT_TRUE(env->NewAppendableFile(path, &f).ok());
    EXPECT_EQ(f->Size(), 5u);
    ASSERT_TRUE(f->Append("part2").ok());
    ASSERT_TRUE(f->Close().ok());
  }
  std::string content;
  ASSERT_TRUE(ReadFileToString(env, path, &content).ok());
  EXPECT_EQ(content, "part1part2");
  (void)env->RemoveFile(path);
}

TEST(EnvTest, RandomAccessReads) {
  Env* env = Env::Default();
  const std::string path = "/tmp/railgun_env_ra_test";
  ASSERT_TRUE(WriteStringToFile(env, "0123456789", path).ok());
  std::unique_ptr<RandomAccessFile> f;
  ASSERT_TRUE(env->NewRandomAccessFile(path, &f).ok());
  char scratch[8];
  Slice result;
  ASSERT_TRUE(f->Read(3, 4, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "3456");
  // Reading past EOF returns the available bytes.
  ASSERT_TRUE(f->Read(8, 8, &result, scratch).ok());
  EXPECT_EQ(result.ToString(), "89");
  (void)env->RemoveFile(path);
}

}  // namespace
}  // namespace railgun
