// Cross-cutting property tests: codec round-trips over randomized
// inputs, decompressor robustness against arbitrary bytes, expression
// parser canonicalization, and window-spec stability.
#include <gtest/gtest.h>
#include <algorithm>

#include "common/compression.h"
#include "common/histogram.h"
#include "common/random.h"
#include "engine/stream_def.h"
#include "query/expr.h"
#include "query/query.h"
#include "reservoir/event.h"
#include "workload/generator.h"

namespace railgun {
namespace {

// ---------------------------------------------------------------- LZ codec

class LzFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LzFuzzTest, DecompressorNeverCrashesOnGarbage) {
  Random64 rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    std::string garbage;
    const size_t n = rng.Uniform(2048);
    for (size_t i = 0; i < n; ++i) {
      garbage.push_back(static_cast<char>(rng.Uniform(256)));
    }
    std::string out;
    // Must return a Status (usually Corruption), never crash or hang.
    (void)LzUncompress(garbage, &out);
  }
  SUCCEED();
}

TEST_P(LzFuzzTest, TruncatedValidStreamsRejected) {
  Random64 rng(GetParam() + 1000);
  std::string input;
  for (int i = 0; i < 5000; ++i) {
    input.push_back(static_cast<char>('a' + rng.Uniform(4)));
  }
  std::string compressed;
  LzCompress(input, &compressed);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t cut = 1 + rng.Uniform(compressed.size() - 1);
    std::string truncated = compressed.substr(0, cut);
    std::string out;
    const Status s = LzUncompress(truncated, &out);
    // Either detected corruption, or (if the cut landed on a token
    // boundary past all data) produced a strict prefix — never garbage
    // beyond the original.
    if (s.ok()) {
      EXPECT_LE(out.size(), input.size());
      EXPECT_EQ(out, input.substr(0, out.size()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LzFuzzTest, ::testing::Values(1, 2, 3));

// ------------------------------------------------------------ event codec

TEST(EventCodecProperty, RandomEventsRoundTripExactly) {
  workload::FraudStreamConfig config;
  config.total_fields = 103;
  workload::FraudStreamGenerator generator(config);
  const reservoir::Schema schema(1, generator.schema_fields());
  const reservoir::EventCodec codec(&schema);

  Random64 rng(99);
  for (int trial = 0; trial < 300; ++trial) {
    reservoir::Event original =
        generator.Next(static_cast<Micros>(rng.Uniform(1ull << 50)));
    original.offset = rng.Next();

    std::string buf;
    const Micros base = static_cast<Micros>(rng.Uniform(1ull << 50));
    codec.Encode(original, base, &buf);
    Slice in(buf);
    reservoir::Event decoded;
    ASSERT_TRUE(codec.Decode(&in, base, &decoded).ok());
    EXPECT_TRUE(in.empty()) << "trailing bytes after decode";

    EXPECT_EQ(decoded.timestamp, original.timestamp);
    EXPECT_EQ(decoded.id, original.id);
    EXPECT_EQ(decoded.offset, original.offset);
    ASSERT_EQ(decoded.values.size(), original.values.size());
    for (size_t i = 0; i < original.values.size(); ++i) {
      EXPECT_TRUE(decoded.values[i] == original.values[i]) << "field " << i;
    }
  }
}

TEST(EventCodecProperty, TruncatedEventsRejected) {
  const reservoir::Schema schema(
      1, {{"a", reservoir::FieldType::kString},
          {"b", reservoir::FieldType::kDouble},
          {"c", reservoir::FieldType::kInt64}});
  const reservoir::EventCodec codec(&schema);
  reservoir::Event e;
  e.timestamp = 123;
  e.id = 5;
  e.values = {reservoir::FieldValue("hello"), reservoir::FieldValue(2.5),
              reservoir::FieldValue(int64_t{-9})};
  std::string buf;
  codec.Encode(e, 0, &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    reservoir::Event decoded;
    EXPECT_FALSE(codec.Decode(&in, 0, &decoded).ok()) << "cut=" << cut;
  }
}

// ------------------------------------------------------- wire envelopes

TEST(WireProperty, ReplyEnvelopeRoundTripsRandomPayloads) {
  Random64 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    engine::ReplyEnvelope original;
    original.request_id = rng.Next();
    const int n = static_cast<int>(rng.Uniform(20));
    for (int i = 0; i < n; ++i) {
      engine::MetricReply r;
      r.metric_name = "metric" + std::to_string(rng.Uniform(100));
      r.group_key = std::string(rng.Uniform(30), 'k');
      switch (rng.Uniform(4)) {
        case 0: r.value = reservoir::FieldValue(static_cast<int64_t>(
                    rng.Next())); break;
        case 1: r.value = reservoir::FieldValue(rng.NextDouble()); break;
        case 2: r.value = reservoir::FieldValue(rng.OneIn(2)); break;
        default: r.value = reservoir::FieldValue("s" +
                     std::to_string(rng.Uniform(1000))); break;
      }
      original.results.push_back(std::move(r));
    }
    std::string encoded;
    EncodeReplyEnvelope(original, &encoded);
    engine::ReplyEnvelope decoded;
    ASSERT_TRUE(engine::DecodeReplyEnvelope(encoded, &decoded).ok());
    EXPECT_EQ(decoded.request_id, original.request_id);
    ASSERT_EQ(decoded.results.size(), original.results.size());
    for (size_t i = 0; i < original.results.size(); ++i) {
      EXPECT_EQ(decoded.results[i].metric_name,
                original.results[i].metric_name);
      EXPECT_TRUE(decoded.results[i].value == original.results[i].value);
    }
  }
}

// ------------------------------------------------------ expression parser

TEST(ExprProperty, CanonicalFormIsAFixedPoint) {
  // Parsing an expression's ToString() must yield the same ToString()
  // (the canonical form is stable — the property the DAG prefix-sharing
  // keys rely on).
  const char* expressions[] = {
      "a > 1",
      "a + b * c - d / 2 >= 10",
      "not (x == 'lisbon' or y != 3.5) and z",
      "-a < -(b)",
      "f1 > 1 and f2 > 2 and f3 > 3 or f4 == 0",
      "amount / count > 100 and flagged",
  };
  for (const char* text : expressions) {
    auto first = query::ParseExpr(text);
    ASSERT_TRUE(first.ok()) << text;
    const std::string canon = first.value()->ToString();
    auto second = query::ParseExpr(canon);
    ASSERT_TRUE(second.ok()) << canon;
    EXPECT_EQ(second.value()->ToString(), canon) << text;
  }
}

TEST(QueryProperty, ParsedWindowsSurviveToStringRoundTrip) {
  const char* windows[] = {
      "sliding 5 minutes", "sliding 90 seconds", "tumbling 2 hours",
      "infinite",          "sliding 7 days",     "sliding 250 ms",
      "sliding 5 minutes delayed by 30 seconds",
  };
  for (const char* w : windows) {
    const std::string sql =
        std::string("SELECT count(*) FROM s OVER ") + w;
    auto q1 = query::ParseQuery(sql);
    ASSERT_TRUE(q1.ok()) << sql;
    // Re-parse via the spec's own rendering.
    const std::string sql2 =
        "SELECT count(*) FROM s OVER " + q1->window.ToString();
    auto q2 = query::ParseQuery(sql2);
    ASSERT_TRUE(q2.ok()) << sql2;
    EXPECT_EQ(q2->window, q1->window) << w;
  }
}

// ------------------------------------------------------------- histogram

TEST(HistogramProperty, PercentilesBoundedByRecordedRange) {
  Random64 rng(21);
  LatencyHistogram hist;
  int64_t min = INT64_MAX, max = 0;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = static_cast<int64_t>(rng.Uniform(1ull << 30));
    hist.Record(v);
    min = std::min(min, v);
    max = std::max(max, v);
  }
  int64_t prev = 0;
  for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const int64_t v = hist.ValueAtPercentile(p);
    EXPECT_GE(v, prev) << "percentiles must be monotonic";
    EXPECT_LE(v, max);
    prev = v;
  }
  // Relative error bound from the bucket geometry (2^-7).
  const int64_t p100 = hist.ValueAtPercentile(100);
  EXPECT_LE(p100, max);
  EXPECT_GE(p100, max - (max >> 6));
}

}  // namespace
}  // namespace railgun
