// Tests for the synthetic fraud workload generator and the open-loop
// (coordinated-omission-corrected) injector.
#include <gtest/gtest.h>

#include <set>

#include "workload/generator.h"
#include "workload/injector.h"

namespace railgun::workload {
namespace {

TEST(GeneratorTest, SchemaHas103FieldsLikeThePaperDataset) {
  FraudStreamConfig config;
  FraudStreamGenerator generator(config);
  EXPECT_EQ(generator.schema_fields().size(), 103u);
  EXPECT_EQ(generator.schema_fields()[0].name, "cardId");
  EXPECT_EQ(generator.schema_fields()[1].name, "merchantId");
  EXPECT_EQ(generator.schema_fields()[2].name, "amount");
}

TEST(GeneratorTest, EventsMatchSchemaAndHaveUniqueIds) {
  FraudStreamConfig config;
  FraudStreamGenerator generator(config);
  std::set<uint64_t> ids;
  for (int i = 0; i < 500; ++i) {
    const reservoir::Event e = generator.Next(i * 1000);
    EXPECT_EQ(e.values.size(), generator.schema_fields().size());
    EXPECT_EQ(e.timestamp, i * 1000);
    EXPECT_TRUE(ids.insert(e.id).second) << "duplicate id";
    EXPECT_GT(e.values[2].ToNumber(), 0) << "amounts are positive";
  }
}

TEST(GeneratorTest, CardPopularityIsSkewed) {
  FraudStreamConfig config;
  config.num_cards = 10000;
  FraudStreamGenerator generator(config);
  std::map<std::string, int> counts;
  for (int i = 0; i < 20000; ++i) {
    counts[generator.Next(0).values[0].as_string()]++;
  }
  int max_count = 0;
  for (const auto& [card, count] : counts) {
    max_count = std::max(max_count, count);
  }
  // Zipf head: the hottest card appears far above the uniform 2/card.
  EXPECT_GT(max_count, 100);
}

TEST(GeneratorTest, DeterministicForSameSeed) {
  FraudStreamConfig config;
  FraudStreamGenerator a(config), b(config);
  for (int i = 0; i < 100; ++i) {
    const auto ea = a.Next(i);
    const auto eb = b.Next(i);
    EXPECT_EQ(ea.values[0].as_string(), eb.values[0].as_string());
    EXPECT_EQ(ea.values[2].ToNumber(), eb.values[2].ToNumber());
  }
}

TEST(InjectorTest, OpenLoopSubmitsAllEventsAtTargetRate) {
  FraudStreamConfig config;
  config.total_fields = 5;
  FraudStreamGenerator generator(config);

  InjectorOptions options;
  options.events_per_second = 5000;
  options.total_events = 500;
  OpenLoopInjector injector(options, MonotonicClock::Default());

  InjectorReport report;
  ASSERT_TRUE(injector
                  .Run(&generator,
                       [](const reservoir::Event&, std::function<void()> done)
                           -> Status {
                         done();  // Instant completion.
                         return Status::OK();
                       },
                       &report)
                  .ok());
  EXPECT_EQ(report.submitted, 500u);
  EXPECT_EQ(report.completed, 500u);
  EXPECT_EQ(report.timed_out, 0u);
  EXPECT_NEAR(report.achieved_rate, 5000, 1500);
  EXPECT_EQ(report.latencies.Count(), 500);
}

TEST(InjectorTest, WarmupEventsExcludedFromHistogram) {
  FraudStreamConfig config;
  config.total_fields = 5;
  FraudStreamGenerator generator(config);
  InjectorOptions options;
  options.events_per_second = 10000;
  options.total_events = 200;
  options.warmup_events = 50;
  OpenLoopInjector injector(options, MonotonicClock::Default());
  InjectorReport report;
  ASSERT_TRUE(injector
                  .Run(&generator,
                       [](const reservoir::Event&, std::function<void()> done)
                           -> Status {
                         done();
                         return Status::OK();
                       },
                       &report)
                  .ok());
  EXPECT_EQ(report.latencies.Count(), 150);
}

TEST(InjectorTest, LatencyMeasuredAgainstScheduleNotSendTime) {
  // A submit function that stalls: because latency is measured from the
  // *scheduled* time, queued events show growing latency — the
  // coordinated-omission correction in action.
  FraudStreamConfig config;
  config.total_fields = 5;
  FraudStreamGenerator generator(config);
  InjectorOptions options;
  options.events_per_second = 1000;  // 1 ms interval.
  options.total_events = 20;
  OpenLoopInjector injector(options, MonotonicClock::Default());
  InjectorReport report;
  ASSERT_TRUE(
      injector
          .Run(&generator,
               [](const reservoir::Event&, std::function<void()> done)
                   -> Status {
                 MonotonicClock::Default()->SleepMicros(5000);  // 5 ms stall.
                 done();
                 return Status::OK();
               },
               &report)
          .ok());
  // Every event takes >= 5 ms of service; the open loop cannot submit
  // faster than it blocks, so scheduled lag accumulates: the tail
  // latency far exceeds a single 5 ms service time.
  EXPECT_GT(report.latencies.ValueAtPercentile(100), 20000);
}

TEST(InjectorTest, UncompletedEventsCountAsTimedOut) {
  FraudStreamConfig config;
  config.total_fields = 5;
  FraudStreamGenerator generator(config);
  InjectorOptions options;
  options.events_per_second = 10000;
  options.total_events = 10;
  options.completion_timeout = 50000;  // 50 ms drain.
  OpenLoopInjector injector(options, MonotonicClock::Default());
  InjectorReport report;
  ASSERT_TRUE(injector
                  .Run(&generator,
                       [](const reservoir::Event&,
                          std::function<void()>) -> Status {
                         return Status::OK();  // Never calls done().
                       },
                       &report)
                  .ok());
  EXPECT_EQ(report.completed, 0u);
  EXPECT_EQ(report.timed_out, 10u);
}

}  // namespace
}  // namespace railgun::workload
