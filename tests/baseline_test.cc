// Tests for the hopping-window and quadratic baselines, including the
// paper's central accuracy argument: hopping windows miss bursts that a
// true sliding window catches (Figure 1), regardless of hop size.
#include <gtest/gtest.h>

#include "baseline/hopping_engine.h"
#include "storage/db.h"

namespace railgun::baseline {
namespace {

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(storage::DestroyDB("/tmp/railgun_baseline_test").ok());
    storage::DBOptions options;
    ASSERT_TRUE(
        storage::DB::Open(options, "/tmp/railgun_baseline_test", &db_).ok());
  }
  std::unique_ptr<storage::DB> db_;
};

TEST_F(BaselineTest, HoppingStateCountMatchesRatio) {
  HoppingOptions options;
  options.window_size = 60 * kMicrosPerMinute;
  options.hop = 5 * kMicrosPerMinute;
  HoppingEngine engine(options, db_.get());
  EXPECT_EQ(engine.states_per_event(), 12);

  options.hop = kMicrosPerSecond;
  HoppingEngine fine(options, db_.get());
  EXPECT_EQ(fine.states_per_event(), 3600);
}

TEST_F(BaselineTest, HoppingCountsWithinOneWindowInstance) {
  HoppingOptions options;
  options.window_size = 5 * kMicrosPerMinute;
  options.hop = kMicrosPerMinute;
  HoppingEngine engine(options, db_.get());

  // Events well inside one window instance: counts accumulate.
  BaselineResult result;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(engine
                    .ProcessEvent("card1",
                                  10 * kMicrosPerSecond +
                                      i * kMicrosPerSecond,
                                  1.0, &result)
                    .ok());
  }
  EXPECT_EQ(result.count, 4);
  EXPECT_DOUBLE_EQ(result.sum, 4.0);
}

TEST_F(BaselineTest, Figure1HoppingMissesTheBurst) {
  // The paper's Figure 1: five events within 4.5 minutes, placed
  // strictly *between* hop boundaries (as drawn in the figure). The
  // true 5-minute sliding window contains all five at the last arrival,
  // but no 1-minute-hop instance does.
  HoppingOptions options;
  options.window_size = 5 * kMicrosPerMinute;
  options.hop = kMicrosPerMinute;
  HoppingEngine engine(options, db_.get());

  const double minutes[] = {0.9, 1.9, 2.9, 3.9, 5.4};
  BaselineResult result;
  for (double m : minutes) {
    ASSERT_TRUE(engine
                    .ProcessEvent("card1",
                                  static_cast<Micros>(m * kMicrosPerMinute),
                                  1.0, &result)
                    .ok());
  }
  // The rule "count in last 5 min > 4" should fire (5 events within
  // 4.5 minutes) but hopping reports fewer.
  EXPECT_LT(result.count, 5);
}

TEST_F(BaselineTest, QuadraticEngineIsAccurateOnTheFigure1Burst) {
  QuadraticSlidingEngine engine(5 * kMicrosPerMinute, db_.get());
  const double minutes[] = {0.9, 1.9, 2.9, 3.9, 5.4};
  BaselineResult result;
  for (double m : minutes) {
    ASSERT_TRUE(engine
                    .ProcessEvent("card1",
                                  static_cast<Micros>(m * kMicrosPerMinute),
                                  1.0, &result)
                    .ok());
  }
  EXPECT_EQ(result.count, 5);  // Accurate, unlike hopping...
  EXPECT_DOUBLE_EQ(result.sum, 5.0);
}

TEST_F(BaselineTest, QuadraticEngineExpiresOldEvents) {
  QuadraticSlidingEngine engine(kMicrosPerMinute, db_.get());
  BaselineResult result;
  ASSERT_TRUE(engine.ProcessEvent("c", 0, 1.0, &result).ok());
  ASSERT_TRUE(engine.ProcessEvent("c", 30 * kMicrosPerSecond, 1.0, &result)
                  .ok());
  EXPECT_EQ(result.count, 2);
  // 90 s later: the first two are out of the 60 s window.
  ASSERT_TRUE(engine.ProcessEvent("c", 120 * kMicrosPerSecond, 1.0, &result)
                  .ok());
  EXPECT_EQ(result.count, 1);
}

TEST_F(BaselineTest, KeysAreIndependent) {
  HoppingOptions options;
  options.window_size = 5 * kMicrosPerMinute;
  options.hop = kMicrosPerMinute;
  HoppingEngine engine(options, db_.get());
  BaselineResult a, b;
  ASSERT_TRUE(engine.ProcessEvent("cardA", 1000, 10.0, &a).ok());
  ASSERT_TRUE(engine.ProcessEvent("cardB", 2000, 20.0, &b).ok());
  EXPECT_DOUBLE_EQ(a.sum, 10.0);
  EXPECT_DOUBLE_EQ(b.sum, 20.0);
}

// Property: per-event state-store writes scale linearly with ws/hop —
// the structural cost the paper's Figure 8 measures.
class HoppingCostTest : public ::testing::TestWithParam<int> {};

TEST_P(HoppingCostTest, PerEventWorkScalesWithRatio) {
  ASSERT_TRUE(storage::DestroyDB("/tmp/railgun_hopcost_test").ok());
  std::unique_ptr<storage::DB> db;
  ASSERT_TRUE(storage::DB::Open(storage::DBOptions(),
                                "/tmp/railgun_hopcost_test", &db).ok());
  HoppingOptions options;
  options.window_size = 60 * kMicrosPerMinute;
  options.hop = options.window_size / GetParam();
  HoppingEngine engine(options, db.get());
  EXPECT_EQ(engine.states_per_event(), GetParam());
  BaselineResult result;
  ASSERT_TRUE(engine.ProcessEvent("c", kMicrosPerHour, 1.0, &result).ok());
}

INSTANTIATE_TEST_SUITE_P(Ratios, HoppingCostTest,
                         ::testing::Values(6, 12, 60, 240, 720));

}  // namespace
}  // namespace railgun::baseline
