// Tests for the stream-operator combinator layer (src/ops/) and live
// subscriptions: the ADD PIPELINE / SUBSCRIBE grammars, the fluent
// builder round-trip, compiled operator semantics (filter/map/by/rate/
// window_count/threshold/changed/route_to_stream) with per-operator
// counters, end-to-end pipeline registration through api::Client (the
// routed events materialize in the target stream), and the
// SubscriptionHub lifecycle: live raw and metric tails, bounded-queue
// slow-subscriber drops, cancel mid-stream, and hub restart as a typed
// resubscribe signal that never redelivers acked records.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "api/client.h"
#include "engine/stream_def.h"
#include "msg/broker.h"
#include "ops/pipeline.h"
#include "ops/sub_wire.h"
#include "ops/subscription.h"
#include "query/pipeline.h"
#include "reservoir/event.h"

namespace railgun::ops {
namespace {

using reservoir::FieldType;
using reservoir::FieldValue;

constexpr const char* kChain =
    "ADD PIPELINE big_spenders ON payments "
    "| filter(amount > 100) | by(cardId) "
    "| threshold(amount, 500) | route_to_stream(alerts)";

// ----- Grammar ------------------------------------------------------

TEST(PipelineParserTest, ParsesFullChain) {
  auto parsed = query::ParsePipeline(kChain);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const query::PipelineSpec& spec = parsed.value();
  EXPECT_EQ(spec.name, "big_spenders");
  EXPECT_EQ(spec.stream, "payments");
  ASSERT_EQ(spec.ops.size(), 4u);
  EXPECT_EQ(spec.ops[0].kind, query::OpKind::kFilter);
  EXPECT_EQ(spec.ops[1].kind, query::OpKind::kBy);
  EXPECT_EQ(spec.ops[1].keys, std::vector<std::string>{"cardId"});
  EXPECT_EQ(spec.ops[2].kind, query::OpKind::kThreshold);
  EXPECT_EQ(spec.ops[2].field, "amount");
  EXPECT_DOUBLE_EQ(spec.ops[2].limit, 500);
  EXPECT_EQ(spec.ops[3].kind, query::OpKind::kRouteToStream);
  EXPECT_EQ(spec.ops[3].target, "alerts");
  EXPECT_EQ(spec.raw, kChain);
}

TEST(PipelineParserTest, RejectsMalformedStatements) {
  // No operators at all.
  EXPECT_TRUE(query::ParsePipeline("ADD PIPELINE p ON s")
                  .status()
                  .IsInvalidArgument());
  // route_to_stream must be terminal.
  EXPECT_TRUE(query::ParsePipeline(
                  "ADD PIPELINE p ON s | route_to_stream(t) | filter(a > 1)")
                  .status()
                  .IsInvalidArgument());
  // Unknown operator.
  EXPECT_TRUE(query::ParsePipeline("ADD PIPELINE p ON s | frobnicate(x)")
                  .status()
                  .IsInvalidArgument());
  // rate/window_count need a count >= 1.
  EXPECT_TRUE(query::ParsePipeline("ADD PIPELINE p ON s | rate(0)")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(query::ParsePipeline("ADD PIPELINE p ON s | window_count(0)")
                  .status()
                  .IsInvalidArgument());
}

TEST(SubscribeParserTest, RawTailWithFilter) {
  auto parsed = query::ParseSubscribe(
      "SUBSCRIBE SELECT * FROM payments WHERE amount > 100");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed.value().raw_tail);
  EXPECT_EQ(parsed.value().stream, "payments");
  EXPECT_NE(parsed.value().filter, nullptr);
}

TEST(SubscribeParserTest, MetricTailDefaultsToInfiniteWindow) {
  auto parsed = query::ParseSubscribe(
      "SUBSCRIBE SELECT sum(amount) FROM payments GROUP BY cardId");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_FALSE(parsed.value().raw_tail);
  EXPECT_EQ(parsed.value().query.window.kind, window::WindowKind::kInfinite);

  auto sliding = query::ParseSubscribe(
      "SUBSCRIBE SELECT sum(amount) FROM payments GROUP BY cardId "
      "OVER sliding 3 events");
  ASSERT_TRUE(sliding.ok()) << sliding.status().ToString();
  EXPECT_EQ(sliding.value().query.window.kind,
            window::WindowKind::kCountSliding);
  EXPECT_EQ(sliding.value().query.window.count, 3u);
}

TEST(SubscribeParserTest, StatementDetection) {
  EXPECT_TRUE(query::IsSubscribeStatement("SUBSCRIBE SELECT * FROM s"));
  EXPECT_TRUE(query::IsSubscribeStatement("  subscribe select * from s"));
  EXPECT_FALSE(query::IsSubscribeStatement("SELECT * FROM s"));
  EXPECT_FALSE(query::IsSubscribeStatement("ADD PIPELINE p ON s | rate(1)"));
}

TEST(PipelineBuilderTest, SynthesizedStatementRoundTrips) {
  const std::string statement = PipelineBuilder("alerts", "payments")
                                    .Filter("amount > 100")
                                    .By({"cardId", "merchantId"})
                                    .Rate(5)
                                    .WindowCount(3)
                                    .Threshold("amount", 500)
                                    .Changed("amount")
                                    .Map("twice", "amount * 2")
                                    .RouteToStream("big_payments")
                                    .Statement();
  auto parsed = query::ParsePipeline(statement);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << statement;
  EXPECT_EQ(parsed.value().name, "alerts");
  EXPECT_EQ(parsed.value().stream, "payments");
  ASSERT_EQ(parsed.value().ops.size(), 8u);
  EXPECT_EQ(parsed.value().ops.back().kind, query::OpKind::kRouteToStream);
  EXPECT_EQ(parsed.value().ops.back().target, "big_payments");
}

// ----- Compiled operator semantics ----------------------------------

reservoir::Schema PaymentsSchema() {
  return reservoir::Schema(
      0, {{"cardId", FieldType::kString}, {"amount", FieldType::kDouble}});
}

reservoir::Event MakeEvent(uint64_t id, Micros ts, const std::string& card,
                           double amount) {
  reservoir::Event event;
  event.id = id;
  event.timestamp = ts;
  event.values = {FieldValue(card), FieldValue(amount)};
  return event;
}

std::unique_ptr<Pipeline> MustCompile(const std::string& statement) {
  auto compiled =
      Pipeline::Compile(statement, PaymentsSchema(), /*registry=*/nullptr);
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return std::move(compiled).value();
}

TEST(CompiledPipelineTest, FilterMapRoute) {
  auto pipeline = MustCompile(
      "ADD PIPELINE p ON payments | filter(amount > 100) "
      "| map(twice = amount * 2) | route_to_stream(alerts)");
  std::vector<RoutedEvent> routed;
  pipeline->Process(MakeEvent(1, 10, "c1", 50.0), &routed);
  EXPECT_TRUE(routed.empty());

  pipeline->Process(MakeEvent(2, 20, "c1", 200.0), &routed);
  ASSERT_EQ(routed.size(), 1u);
  EXPECT_EQ(routed[0].target, "alerts");
  EXPECT_EQ(routed[0].source_id, 2u);
  EXPECT_EQ(routed[0].timestamp, 20);
  // The routed event carries the effective schema: source fields plus
  // the map-synthesized one.
  std::map<std::string, FieldValue> fields(routed[0].fields.begin(),
                                           routed[0].fields.end());
  ASSERT_EQ(fields.count("twice"), 1u);
  EXPECT_DOUBLE_EQ(fields["twice"].ToNumber(), 400.0);
  EXPECT_EQ(fields["cardId"].ToString(), "c1");
}

TEST(CompiledPipelineTest, ThresholdAndChanged) {
  auto pipeline = MustCompile(
      "ADD PIPELINE p ON payments | threshold(amount, 100) "
      "| changed(cardId) | route_to_stream(alerts)");
  std::vector<RoutedEvent> routed;
  pipeline->Process(MakeEvent(1, 1, "c1", 150.0), &routed);  // First: passes.
  pipeline->Process(MakeEvent(2, 2, "c1", 160.0), &routed);  // Same card.
  pipeline->Process(MakeEvent(3, 3, "c2", 170.0), &routed);  // Transition.
  pipeline->Process(MakeEvent(4, 4, "c1", 50.0), &routed);   // Under limit.
  ASSERT_EQ(routed.size(), 2u);
  EXPECT_EQ(routed[0].source_id, 1u);
  EXPECT_EQ(routed[1].source_id, 3u);
}

TEST(CompiledPipelineTest, ByKeysStatePerEntity) {
  // Every 2nd event per card passes; interleave two cards to prove the
  // counter is keyed, not global.
  auto pipeline = MustCompile(
      "ADD PIPELINE p ON payments | by(cardId) | window_count(2) "
      "| route_to_stream(alerts)");
  std::vector<RoutedEvent> routed;
  pipeline->Process(MakeEvent(1, 1, "a", 1.0), &routed);
  pipeline->Process(MakeEvent(2, 2, "b", 1.0), &routed);
  pipeline->Process(MakeEvent(3, 3, "a", 1.0), &routed);
  pipeline->Process(MakeEvent(4, 4, "b", 1.0), &routed);
  ASSERT_EQ(routed.size(), 2u);
  EXPECT_EQ(routed[0].source_id, 3u);
  EXPECT_EQ(routed[1].source_id, 4u);
  // The synthesized window_count field rode along.
  std::map<std::string, FieldValue> fields(routed[0].fields.begin(),
                                           routed[0].fields.end());
  ASSERT_EQ(fields.count("window_count"), 1u);
}

TEST(CompiledPipelineTest, RateEmitsOncePerInterval) {
  auto pipeline = MustCompile(
      "ADD PIPELINE p ON payments | rate(1) | route_to_stream(alerts)");
  std::vector<RoutedEvent> routed;
  // Three events inside the same 1s interval, one in the next.
  pipeline->Process(MakeEvent(1, 0, "a", 1.0), &routed);
  pipeline->Process(MakeEvent(2, 200 * kMicrosPerMilli, "a", 1.0), &routed);
  pipeline->Process(MakeEvent(3, 400 * kMicrosPerMilli, "a", 1.0), &routed);
  pipeline->Process(MakeEvent(4, 1500 * kMicrosPerMilli, "a", 1.0), &routed);
  // One emission per interval boundary crossed.
  ASSERT_GE(routed.size(), 1u);
  std::map<std::string, FieldValue> fields(routed.back().fields.begin(),
                                           routed.back().fields.end());
  ASSERT_EQ(fields.count("rate"), 1u);
  EXPECT_GT(fields["rate"].ToNumber(), 0.0);
}

TEST(CompiledPipelineTest, CountersTrackPerOperatorFlow) {
  auto pipeline = MustCompile(
      "ADD PIPELINE p ON payments | filter(amount > 100) "
      "| route_to_stream(alerts)");
  std::vector<RoutedEvent> routed;
  pipeline->Process(MakeEvent(1, 1, "a", 50.0), &routed);
  pipeline->Process(MakeEvent(2, 2, "a", 200.0), &routed);
  pipeline->Process(MakeEvent(3, 3, "a", 300.0), &routed);
  std::vector<OpCounters> counters = pipeline->CountersSnapshot();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].in, 3u);
  EXPECT_EQ(counters[0].out, 2u);  // One absorbed on purpose, not dropped.
  EXPECT_EQ(counters[0].dropped, 0u);
  EXPECT_EQ(counters[1].in, 2u);
}

TEST(CompiledPipelineTest, CompileRejectsUnknownFields) {
  EXPECT_TRUE(Pipeline::Compile(
                  "ADD PIPELINE p ON payments | filter(nope > 1) "
                  "| route_to_stream(alerts)",
                  PaymentsSchema(), nullptr)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Pipeline::Compile(
                  "ADD PIPELINE p ON payments | threshold(nope, 1) "
                  "| route_to_stream(alerts)",
                  PaymentsSchema(), nullptr)
                  .status()
                  .IsInvalidArgument());
}

// ----- End-to-end through api::Client -------------------------------

api::ClientOptions TestOptions(const std::string& name) {
  api::ClientOptions options;
  options.num_nodes = 1;
  options.processor_units_per_node = 2;
  options.base_dir = "/tmp/railgun-ops-test-" + name;
  return options;
}

constexpr const char* kPaymentsDdl =
    "CREATE STREAM payments (cardId STRING, amount DOUBLE) "
    "PARTITION BY cardId PARTITIONS 2";
constexpr const char* kAlertsDdl =
    "CREATE STREAM alerts (cardId STRING, amount DOUBLE) "
    "PARTITION BY cardId PARTITIONS 2";

TEST(PipelineEndToEndTest, RoutedEventsMaterializeInTargetStream) {
  api::Client client(TestOptions("route"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());
  ASSERT_TRUE(client.CreateStream(kAlertsDdl).ok());
  ASSERT_TRUE(client
                  .Query("ADD METRIC SELECT count(*) FROM alerts "
                         "GROUP BY cardId OVER infinite")
                  .ok());
  const Status added = client.Execute(
      "ADD PIPELINE big ON payments | filter(amount > 100) | by(cardId) "
      "| threshold(amount, 150) | route_to_stream(alerts)");
  ASSERT_TRUE(added.ok()) << added.ToString();

  // Registered pipelines are listable.
  std::vector<query::PipelineSpec> pipelines = client.ListPipelines();
  ASSERT_EQ(pipelines.size(), 1u);
  EXPECT_EQ(pipelines[0].name, "big");
  EXPECT_EQ(pipelines[0].stream, "payments");

  // Re-registering the same statement is AlreadyExists, not a dup.
  EXPECT_TRUE(client
                  .AddPipeline(
                      "ADD PIPELINE big ON payments | filter(amount > 100) "
                      "| by(cardId) | threshold(amount, 150) "
                      "| route_to_stream(alerts)")
                  .IsAlreadyExists());

  // 60 and 120 are filtered out (<= 150); 200 and 300 route to alerts.
  for (const double amount : {60.0, 120.0, 200.0, 300.0}) {
    ASSERT_TRUE(client
                    .SubmitSync("payments", api::Row()
                                                .Set("cardId", "c1")
                                                .Set("amount", amount))
                    .ok());
  }

  // Routed republication is asynchronous (fire-and-forget): probe the
  // alerts metric until the two derived events have landed.
  double count = 0;
  for (int attempt = 0; attempt < 100 && count < 3.0; ++attempt) {
    api::EventResult probe = client.SubmitSync(
        "alerts",
        api::Row().Set("cardId", "c1").Set("amount", 0.0));
    ASSERT_TRUE(probe.ok()) << probe.status.ToString();
    ASSERT_NE(probe.Find("count(*)", "c1"), nullptr);
    count = probe.Find("count(*)", "c1")->value.ToNumber();
    if (count < 3.0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  // 2 routed events + at least one probe event.
  EXPECT_GE(count, 3.0);

  // The pipeline and routing counters surface on the internals stream.
  auto samples = client.InternalsSnapshot();
  ASSERT_TRUE(samples.ok());
  client.Stop();
}

TEST(PipelineEndToEndTest, AddPipelineValidatesUpFront) {
  api::Client client(TestOptions("validate"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());
  // Unknown source stream.
  EXPECT_TRUE(client
                  .AddPipeline("ADD PIPELINE p ON nope | filter(amount > 1) "
                               "| route_to_stream(alerts)")
                  .IsNotFound());
  // Filter over a field the stream does not have.
  EXPECT_TRUE(client
                  .AddPipeline("ADD PIPELINE p ON payments | filter(x > 1) "
                               "| route_to_stream(alerts)")
                  .IsInvalidArgument());
  // Execute() routes SUBSCRIBE to a typed redirect.
  EXPECT_TRUE(client.Execute("SUBSCRIBE SELECT * FROM payments")
                  .IsInvalidArgument());
  client.Stop();
}

// ----- Live subscriptions through api::Client -----------------------

TEST(SubscriptionTest, RawTailDeliversOnlyLiveMatchingEvents) {
  api::Client client(TestOptions("rawtail"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());

  // History: submitted before the subscription attaches; never delivered.
  ASSERT_TRUE(client
                  .SubmitSync("payments", api::Row()
                                              .Set("cardId", "old")
                                              .Set("amount", 999.0))
                  .ok());

  auto sub = client.Subscribe(
      "SUBSCRIBE SELECT * FROM payments WHERE amount > 100");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();

  for (const double amount : {50.0, 200.0, 300.0}) {
    ASSERT_TRUE(client
                    .SubmitSync("payments", api::Row()
                                                .Set("cardId", "c1")
                                                .Set("amount", amount))
                    .ok());
  }

  std::vector<SubRecord> records;
  std::vector<SubRecord> batch;
  const Micros deadline = 5 * kMicrosPerSecond;
  for (int i = 0; i < 20 && records.size() < 2; ++i) {
    ASSERT_TRUE(sub.value()->Next(&batch, deadline / 20).ok());
    records.insert(records.end(), batch.begin(), batch.end());
  }
  ASSERT_EQ(records.size(), 2u);
  for (const auto& record : records) {
    std::map<std::string, FieldValue> fields(record.fields.begin(),
                                             record.fields.end());
    EXPECT_EQ(fields["cardId"].ToString(), "c1");
    EXPECT_GT(fields["amount"].ToNumber(), 100.0);
  }
  EXPECT_TRUE(sub.value()->Cancel().ok());
  client.Stop();
}

TEST(SubscriptionTest, MetricTailPushesIncrementalUpdates) {
  api::Client client(TestOptions("metrictail"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());

  auto sub = client.Subscribe(
      "SUBSCRIBE SELECT sum(amount) FROM payments GROUP BY cardId");
  ASSERT_TRUE(sub.ok()) << sub.status().ToString();

  ASSERT_TRUE(client
                  .SubmitSync("payments",
                              api::Row().Set("cardId", "c1").Set("amount",
                                                                 10.0))
                  .ok());
  ASSERT_TRUE(client
                  .SubmitSync("payments",
                              api::Row().Set("cardId", "c1").Set("amount",
                                                                 4.5))
                  .ok());

  std::vector<SubRecord> records;
  std::vector<SubRecord> batch;
  for (int i = 0; i < 20 && records.size() < 2; ++i) {
    ASSERT_TRUE(
        sub.value()->Next(&batch, 250 * kMicrosPerMilli).ok());
    records.insert(records.end(), batch.begin(), batch.end());
  }
  ASSERT_EQ(records.size(), 2u);
  std::map<std::string, FieldValue> first(records[0].fields.begin(),
                                          records[0].fields.end());
  std::map<std::string, FieldValue> second(records[1].fields.begin(),
                                           records[1].fields.end());
  EXPECT_DOUBLE_EQ(first["sum(amount)"].ToNumber(), 10.0);
  EXPECT_DOUBLE_EQ(second["sum(amount)"].ToNumber(), 14.5);
  EXPECT_EQ(first["cardId"].ToString(), "c1");
  client.Stop();
}

TEST(SubscriptionTest, RejectsUnsupportedStatements) {
  api::Client client(TestOptions("subreject"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());
  // Time-window metric tails need a registered metric.
  EXPECT_TRUE(client
                  .Subscribe("SUBSCRIBE SELECT sum(amount) FROM payments "
                             "GROUP BY cardId OVER sliding 5 minutes")
                  .status()
                  .IsInvalidArgument());
  // countDistinct needs stateful storage.
  EXPECT_TRUE(client
                  .Subscribe("SUBSCRIBE SELECT countDistinct(cardId) "
                             "FROM payments")
                  .status()
                  .IsInvalidArgument());
  // Unknown stream.
  EXPECT_TRUE(client.Subscribe("SUBSCRIBE SELECT * FROM nope")
                  .status()
                  .IsNotFound());
  client.Stop();
}

// ----- Hub lifecycle on a bare bus ----------------------------------

engine::StreamDef BareStream() {
  engine::StreamDef def;
  def.name = "payments";
  def.fields = {{"cardId", FieldType::kString},
                {"amount", FieldType::kDouble}};
  def.partitioners = {"cardId"};
  def.partitions_per_topic = 2;
  return def;
}

class HubTest : public ::testing::Test {
 protected:
  void SetUp() override {
    def_ = BareStream();
    topic_ = def_.TopicFor("cardId");
    ASSERT_TRUE(bus_.CreateTopic(topic_, def_.partitions_per_topic).ok());
  }

  SubscriptionHub::StreamLookup Lookup() {
    return [this](const std::string& name) -> StatusOr<engine::StreamDef> {
      if (name != def_.name) return Status::NotFound("unknown: " + name);
      return def_;
    };
  }

  void Publish(uint64_t id, const std::string& card, double amount) {
    engine::EventEnvelope envelope;
    envelope.event = MakeEvent(id, static_cast<Micros>(id), card, amount);
    std::string payload;
    engine::EncodeEventEnvelope(envelope, reservoir::Schema(0, def_.fields),
                                &payload);
    ASSERT_TRUE(bus_.Produce(topic_, card, std::move(payload)).ok());
  }

  // Long-polls the hub until `count` records arrived (acking as the
  // api::Subscription handle would) or the attempt budget runs out.
  std::vector<SubRecord> FetchAtLeast(SubscriptionHub* hub, uint64_t id,
                                      size_t count) {
    std::vector<SubRecord> records;
    uint64_t acked = 0;
    for (int i = 0; i < 50 && records.size() < count; ++i) {
      SubFetchReply reply;
      const Status s =
          hub->Fetch(id, acked, /*max_records=*/0, 100 * kMicrosPerMilli,
                     &reply);
      if (!s.ok()) break;
      if (!reply.records.empty()) acked = reply.records.back().seq;
      records.insert(records.end(), reply.records.begin(),
                     reply.records.end());
    }
    return records;
  }

  msg::InProcessBus bus_;
  engine::StreamDef def_;
  std::string topic_;
};

TEST_F(HubTest, SlowSubscriberQueueStaysBoundedWithTypedDrops) {
  SubscriptionHubOptions options;
  options.queue_capacity = 4;
  SubscriptionHub hub(&bus_, Lookup(), /*registry=*/nullptr, options);
  auto created = hub.Create("SUBSCRIBE SELECT * FROM payments");
  ASSERT_TRUE(created.ok()) << created.status().ToString();

  // Flood without fetching: the queue must stay at capacity and the
  // overflow must be counted, not buffered.
  for (uint64_t i = 1; i <= 40; ++i) Publish(i, "c1", 1.0 * i);
  SubFetchReply reply;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(hub.Fetch(created.value(), 0, 0, 100 * kMicrosPerMilli,
                          &reply)
                    .ok());
    if (reply.dropped_total + reply.records.size() + reply.lag >= 40) break;
  }
  EXPECT_LE(hub.TotalQueueDepth(), 4u);
  EXPECT_GE(reply.dropped_total, 36u);
  ASSERT_FALSE(reply.records.empty());
  // Drop-oldest: what survives is the tail of the flood, with a seq gap
  // where the evicted records were.
  EXPECT_GT(reply.records.front().seq, 1u);
}

TEST_F(HubTest, CancelMidStreamYieldsNotFound) {
  SubscriptionHub hub(&bus_, Lookup(), nullptr);
  auto created = hub.Create("SUBSCRIBE SELECT * FROM payments");
  ASSERT_TRUE(created.ok());
  Publish(1, "c1", 10.0);
  ASSERT_FALSE(FetchAtLeast(&hub, created.value(), 1).empty());

  ASSERT_TRUE(hub.Cancel(created.value()).ok());
  EXPECT_EQ(hub.subscriber_count(), 0u);
  SubFetchReply reply;
  EXPECT_TRUE(hub.Fetch(created.value(), 0, 0, 0, &reply).IsNotFound());
  // Cancelling twice is the caller's idempotence problem: typed NotFound.
  EXPECT_TRUE(hub.Cancel(created.value()).IsNotFound());
}

TEST_F(HubTest, RestartInvalidatesIdsWithoutRedeliveringAckedRecords) {
  auto hub = std::make_unique<SubscriptionHub>(&bus_, Lookup(), nullptr);
  auto created = hub->Create("SUBSCRIBE SELECT * FROM payments");
  ASSERT_TRUE(created.ok());
  const uint64_t old_id = created.value();

  Publish(1, "c1", 10.0);
  Publish(2, "c1", 20.0);
  // Fetch and ack both records: they are consumed.
  ASSERT_EQ(FetchAtLeast(hub.get(), old_id, 2).size(), 2u);

  // "Restart": the hub dies with its subscription table.
  hub.reset();
  SubscriptionHub fresh(&bus_, Lookup(), nullptr);

  // The old id is a typed resubscribe signal, not an error blob.
  SubFetchReply reply;
  EXPECT_TRUE(fresh.Fetch(old_id, 0, 0, 0, &reply).IsNotFound());

  auto resubscribed = fresh.Create("SUBSCRIBE SELECT * FROM payments");
  ASSERT_TRUE(resubscribed.ok());
  Publish(3, "c1", 30.0);
  std::vector<SubRecord> records =
      FetchAtLeast(&fresh, resubscribed.value(), 1);
  // Only the post-resubscribe event: the acked history cannot replay
  // (the fresh tail attaches at the stream's end).
  ASSERT_EQ(records.size(), 1u);
  std::map<std::string, FieldValue> fields(records[0].fields.begin(),
                                           records[0].fields.end());
  EXPECT_DOUBLE_EQ(fields["amount"].ToNumber(), 30.0);
}

TEST_F(HubTest, WireHandlerServesCreateFetchCancel) {
  SubscriptionHub hub(&bus_, Lookup(), nullptr);

  SubCreateRequest create;
  create.statement = "SUBSCRIBE SELECT * FROM payments";
  std::string payload, result;
  EncodeSubCreateRequest(create, &payload);
  Status status;
  ASSERT_TRUE(hub.HandleWire(40, Slice(payload), &status, &result));
  ASSERT_TRUE(status.ok()) << status.ToString();
  SubCreateReply created;
  ASSERT_TRUE(DecodeSubCreateReply(Slice(result), &created).ok());

  Publish(1, "c1", 10.0);
  SubFetchRequest fetch;
  fetch.sub_id = created.sub_id;
  fetch.max_wait_us = kMicrosPerSecond;
  SubFetchReply fetched;
  for (int i = 0; i < 20 && fetched.records.empty(); ++i) {
    payload.clear();
    result.clear();
    EncodeSubFetchRequest(fetch, &payload);
    ASSERT_TRUE(hub.HandleWire(41, Slice(payload), &status, &result));
    ASSERT_TRUE(status.ok());
    ASSERT_TRUE(DecodeSubFetchReply(Slice(result), &fetched).ok());
  }
  ASSERT_EQ(fetched.records.size(), 1u);

  SubCancelRequest cancel;
  cancel.sub_id = created.sub_id;
  payload.clear();
  result.clear();
  EncodeSubCancelRequest(cancel, &payload);
  ASSERT_TRUE(hub.HandleWire(42, Slice(payload), &status, &result));
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(hub.subscriber_count(), 0u);

  // Non-subscription opcodes fall through to the next handler.
  EXPECT_FALSE(hub.HandleWire(7, Slice(payload), &status, &result));
}

}  // namespace
}  // namespace railgun::ops
