// Tests for the public client API (api/client.h): DDL-driven stream
// creation, row binding, future-based submission, typed error statuses
// and the admin surface.
#include <gtest/gtest.h>

#include "api/client.h"

namespace railgun::api {
namespace {

using reservoir::FieldType;
using reservoir::FieldValue;

ClientOptions TestOptions(const std::string& name) {
  ClientOptions options;
  options.num_nodes = 1;
  options.processor_units_per_node = 2;
  options.base_dir = "/tmp/railgun-api-test-" + name;
  return options;
}

constexpr const char* kPaymentsDdl =
    "CREATE STREAM payments (cardId STRING, merchantId STRING, "
    "amount DOUBLE) PARTITION BY cardId, merchantId PARTITIONS 2";

TEST(ClientTest, CreateStreamSubmitAggregateRoundTrip) {
  Client client(TestOptions("roundtrip"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());
  ASSERT_TRUE(client
                  .Query("ADD METRIC SELECT sum(amount), count(*) FROM "
                         "payments GROUP BY cardId OVER sliding 5 minutes")
                  .ok());

  EventResult first = client.SubmitSync(
      "payments", Row()
                      .At(1 * kMicrosPerMinute)
                      .Set("cardId", "card1")
                      .Set("merchantId", "m1")
                      .Set("amount", 10.0));
  ASSERT_TRUE(first.ok()) << first.status.ToString();
  ASSERT_NE(first.Find("count(*)", "card1"), nullptr);
  EXPECT_DOUBLE_EQ(first.Find("count(*)", "card1")->value.ToNumber(), 1.0);
  EXPECT_DOUBLE_EQ(first.Find("sum(amount)", "card1")->value.ToNumber(),
                   10.0);

  EventResult second = client.SubmitSync(
      "payments", Row()
                      .At(2 * kMicrosPerMinute)
                      .Set("cardId", "card1")
                      .Set("merchantId", "m2")
                      .Set("amount", 4.5));
  ASSERT_TRUE(second.ok());
  EXPECT_DOUBLE_EQ(second.Find("count(*)", "card1")->value.ToNumber(), 2.0);
  EXPECT_DOUBLE_EQ(second.Find("sum(amount)", "card1")->value.ToNumber(),
                   14.5);
  client.Stop();
}

TEST(ClientTest, SubmitBatchCompletesEveryRowInOrder) {
  Client client(TestOptions("submit-batch"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());
  ASSERT_TRUE(client
                  .Query("ADD METRIC SELECT sum(amount), count(*) FROM "
                         "payments GROUP BY cardId OVER sliding 5 minutes")
                  .ok());

  std::vector<Row> rows;
  for (int i = 1; i <= 16; ++i) {
    rows.push_back(Row()
                       .At(i * kMicrosPerSecond)
                       .Set("cardId", "cardB")
                       .Set("merchantId", "m" + std::to_string(i % 3))
                       .Set("amount", 2.0));
  }
  std::vector<ResultFuture> futures = client.SubmitBatch("payments", rows);
  ASSERT_EQ(futures.size(), rows.size());
  for (size_t i = 0; i < futures.size(); ++i) {
    ASSERT_TRUE(futures[i].valid());
    EventResult r = futures[i].Get();
    ASSERT_TRUE(r.ok()) << r.status.ToString();
    ASSERT_NE(r.Find("count(*)", "cardB"), nullptr);
    // Events were produced in batch order: the per-key counts ascend.
    EXPECT_DOUBLE_EQ(r.Find("count(*)", "cardB")->value.ToNumber(),
                     static_cast<double>(i + 1));
    EXPECT_DOUBLE_EQ(r.Find("sum(amount)", "cardB")->value.ToNumber(),
                     2.0 * static_cast<double>(i + 1));
  }
  client.Stop();
}

TEST(ClientTest, SubmitBatchRejectsBadRowsWithoutSinkingTheBatch) {
  Client client(TestOptions("submit-batch-mixed"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());
  ASSERT_TRUE(client
                  .Query("ADD METRIC SELECT count(*) FROM payments "
                         "GROUP BY cardId OVER sliding 5 minutes")
                  .ok());

  std::vector<Row> rows = {
      Row().Set("cardId", "cardC").Set("merchantId", "m").Set("amount", 1.0),
      Row().Set("cardId", "cardC"),  // Missing fields: rejected.
      Row().Set("cardId", "cardC").Set("merchantId", "m").Set("amount", 3.0),
  };
  std::vector<ResultFuture> futures = client.SubmitBatch("payments", rows);
  ASSERT_EQ(futures.size(), 3u);
  EXPECT_TRUE(futures[0].Get().ok());
  EXPECT_TRUE(futures[1].Get().status.IsInvalidArgument());
  EventResult last = futures[2].Get();
  ASSERT_TRUE(last.ok());
  EXPECT_DOUBLE_EQ(last.Find("count(*)", "cardC")->value.ToNumber(), 2.0);

  // Whole-batch synchronous rejection: unknown stream.
  std::vector<ResultFuture> rejected = client.SubmitBatch("nope", rows);
  ASSERT_EQ(rejected.size(), 3u);
  for (auto& future : rejected) {
    ASSERT_TRUE(future.valid());
    EXPECT_TRUE(future.ready());
    EXPECT_TRUE(future.Get().status.IsNotFound());
  }
  client.Stop();
}

TEST(ClientTest, SubmitToUnknownStreamIsNotFound) {
  Client client(TestOptions("unknown-stream"));
  ASSERT_TRUE(client.Start().ok());

  ResultFuture future =
      client.Submit("nope", Row().Set("cardId", "c").Set("amount", 1.0));
  ASSERT_TRUE(future.valid());
  EXPECT_TRUE(future.ready());  // Rejected synchronously.
  EXPECT_TRUE(future.Get().status.IsNotFound());

  EXPECT_TRUE(client.SubmitSync("nope", Row()).status.IsNotFound());
  EXPECT_TRUE(client.SubmitNoReply("nope", Row()).IsNotFound());
  client.Stop();
}

TEST(ClientTest, BadRowsAreRejectedWithInvalidArgument) {
  Client client(TestOptions("bad-row"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());

  // Missing fields.
  EXPECT_TRUE(client.SubmitSync("payments", Row().Set("cardId", "c"))
                  .status.IsInvalidArgument());
  // Unknown field.
  EXPECT_TRUE(client
                  .SubmitSync("payments", Row()
                                              .Set("cardId", "c")
                                              .Set("merchantId", "m")
                                              .Set("amount", 1.0)
                                              .Set("bogus", 1.0))
                  .status.IsInvalidArgument());
  // Type mismatch: string where a double is declared.
  EXPECT_TRUE(client
                  .SubmitSync("payments", Row()
                                              .Set("cardId", "c")
                                              .Set("merchantId", "m")
                                              .Set("amount", "a lot"))
                  .status.IsInvalidArgument());
  // Field set twice.
  EXPECT_TRUE(client
                  .SubmitSync("payments", Row()
                                              .Set("cardId", "c")
                                              .Set("cardId", "d")
                                              .Set("merchantId", "m")
                                              .Set("amount", 1.0))
                  .status.IsInvalidArgument());
  // Int coerces to a declared double.
  ASSERT_TRUE(client
                  .Query("SELECT count(*) FROM payments GROUP BY cardId "
                         "OVER infinite")
                  .ok());
  EXPECT_TRUE(client
                  .SubmitSync("payments", Row()
                                              .Set("cardId", "c")
                                              .Set("merchantId", "m")
                                              .Set("amount", int64_t{3}))
                  .ok());
  client.Stop();
}

TEST(ClientTest, DdlErrorsAreTyped) {
  Client client(TestOptions("ddl-errors"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());

  // Duplicate stream.
  EXPECT_TRUE(client.CreateStream(kPaymentsDdl).IsAlreadyExists());
  // Metric over an unknown stream.
  EXPECT_TRUE(client
                  .Query("SELECT count(*) FROM nope GROUP BY cardId "
                         "OVER infinite")
                  .IsNotFound());
  // Metric whose group-by is not covered by any partitioner.
  EXPECT_FALSE(client
                   .Query("SELECT count(*) FROM payments GROUP BY amount "
                          "OVER infinite")
                   .ok());
  // Duplicate metric registration.
  const char* metric =
      "SELECT count(*) FROM payments GROUP BY cardId OVER infinite";
  ASSERT_TRUE(client.Query(metric).ok());
  EXPECT_TRUE(client.Query(metric).IsAlreadyExists());
  // CreateStream() refuses non-CREATE statements, Query() refuses
  // CREATE STREAM.
  EXPECT_TRUE(client.CreateStream(metric).IsInvalidArgument());
  EXPECT_TRUE(client.Query(kPaymentsDdl).IsInvalidArgument());
  client.Stop();
}

TEST(ClientTest, ExecuteRoutesDdlAndListsStreams) {
  Client client(TestOptions("execute"));
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.Execute(kPaymentsDdl).ok());
  ASSERT_TRUE(client
                  .Execute("ADD METRIC SELECT count(*) FROM payments "
                           "GROUP BY cardId OVER sliding 1 hour")
                  .ok());
  // The built-in internals stream is queryable out of the box, so it
  // shows up alongside user streams.
  const std::vector<std::string> expected = {"__railgun.internals",
                                             "payments"};
  EXPECT_EQ(client.ListStreams(), expected);

  auto schema = client.GetSchema("payments");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_fields(), 3u);
  EXPECT_EQ(schema->fields()[2].name, "amount");
  EXPECT_EQ(schema->fields()[2].type, FieldType::kDouble);
  EXPECT_TRUE(client.GetSchema("nope").status().IsNotFound());
  client.Stop();
}

// With no processor units, no aggregation replies ever arrive: the
// request must complete with a typed Unavailable, both through the
// front-end deadline and through a shorter future-side wait.
TEST(ClientTest, ResultFutureTimesOutWithTypedStatus) {
  ClientOptions options = TestOptions("timeout");
  options.processor_units_per_node = 0;
  options.request_timeout = 300 * kMicrosPerMilli;
  Client client(options);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());

  Row row = Row()
                .At(kMicrosPerMinute)
                .Set("cardId", "c")
                .Set("merchantId", "m")
                .Set("amount", 1.0);

  // Future-side wait shorter than the request deadline.
  ResultFuture impatient = client.Submit("payments", row);
  ASSERT_TRUE(impatient.valid());
  EXPECT_FALSE(impatient.ready());
  EXPECT_TRUE(impatient.Get(10 * kMicrosPerMilli).status.IsUnavailable());

  // Front-end deadline: the same future completes with Unavailable.
  EXPECT_TRUE(impatient.Wait(5 * kMicrosPerSecond));
  EXPECT_TRUE(impatient.Get().status.IsUnavailable());

  // The blocking submit path reports the same typed status.
  EXPECT_TRUE(client.SubmitSync("payments", row).status.IsUnavailable());
  client.Stop();
}

TEST(ClientTest, AdminSurfaceReportsTopologyAndScalesOut) {
  ClientOptions options = TestOptions("admin");
  options.processor_units_per_node = 1;
  Client client(options);
  ASSERT_TRUE(client.Start().ok());
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());
  ASSERT_TRUE(client
                  .Query("SELECT count(*) FROM payments GROUP BY cardId "
                         "OVER sliding 1 hour")
                  .ok());

  EXPECT_EQ(client.admin().num_nodes(), 1);
  EXPECT_TRUE(client.admin().NodeAlive(0));
  EXPECT_FALSE(client.admin().NodeAlive(7));

  auto added = client.admin().AddNode();
  ASSERT_TRUE(added.ok());
  EXPECT_EQ(added.value(), 1);
  EXPECT_EQ(client.admin().num_nodes(), 2);

  // The scaled-out node serves submissions too (round-robin picks it).
  for (int i = 0; i < 4; ++i) {
    EventResult result = client.SubmitSync(
        "payments", Row()
                        .At((i + 1) * kMicrosPerMinute)
                        .Set("cardId", "c")
                        .Set("merchantId", "m")
                        .Set("amount", 2.0));
    ASSERT_TRUE(result.ok()) << result.status.ToString();
  }

  ClusterStats stats = client.admin().TotalStats();
  EXPECT_EQ(stats.nodes_total, 2);
  EXPECT_EQ(stats.nodes_alive, 2);
  EXPECT_GE(stats.events_processed, 4u);
  EXPECT_FALSE(client.admin().Describe().empty());

  EXPECT_TRUE(client.admin().KillNode(42).IsNotFound());
  ASSERT_TRUE(client.admin().KillNode(1).ok());
  EXPECT_FALSE(client.admin().NodeAlive(1));
  EXPECT_EQ(client.admin().TotalStats().nodes_alive, 1);

  // Submissions keep flowing through the surviving node.
  EventResult after = client.SubmitSync(
      "payments", Row()
                      .At(10 * kMicrosPerMinute)
                      .Set("cardId", "c")
                      .Set("merchantId", "m")
                      .Set("amount", 2.0));
  EXPECT_TRUE(after.ok()) << after.status.ToString();
  client.Stop();
}

TEST(ClientTest, AttachesToExternallyOwnedCluster) {
  engine::ClusterOptions cluster_options;
  cluster_options.num_nodes = 1;
  cluster_options.base_dir = "/tmp/railgun-api-test-attach";
  engine::Cluster cluster(cluster_options);
  ASSERT_TRUE(cluster.Start().ok());

  Client client(&cluster);
  ASSERT_TRUE(client.Start().ok());  // No-op for attached clusters.
  ASSERT_TRUE(client.CreateStream(kPaymentsDdl).ok());
  ASSERT_TRUE(client
                  .Query("SELECT count(*) FROM payments GROUP BY cardId "
                         "OVER infinite")
                  .ok());
  EventResult result = client.SubmitSync(
      "payments", Row()
                      .At(kMicrosPerMinute)
                      .Set("cardId", "c")
                      .Set("merchantId", "m")
                      .Set("amount", 1.0));
  EXPECT_TRUE(result.ok()) << result.status.ToString();
  client.Stop();  // Must not stop the externally owned cluster.
  EXPECT_TRUE(cluster.node(0)->alive());
  cluster.Stop();
}

TEST(ResultFutureTest, DefaultFutureIsInvalid) {
  ResultFuture future;
  EXPECT_FALSE(future.valid());
  EXPECT_FALSE(future.ready());
  EXPECT_FALSE(future.Wait(0));
  EXPECT_TRUE(future.Get(0).status.IsUnavailable());
}

TEST(ResultFutureTest, ReadyFutureCompletesImmediately) {
  EventResult result;
  result.status = Status::NotFound("nope");
  ResultFuture future = ResultFuture::Ready(std::move(result));
  EXPECT_TRUE(future.valid());
  EXPECT_TRUE(future.ready());
  EXPECT_TRUE(future.Wait(0));
  EXPECT_TRUE(future.Get(0).status.IsNotFound());
}

TEST(RowTest, BindsBySchemaOrderWithCoercion) {
  const reservoir::Schema schema(0, {{"a", FieldType::kInt64},
                                     {"b", FieldType::kDouble},
                                     {"c", FieldType::kBool},
                                     {"d", FieldType::kString}});
  auto event = Row()
                   .Set("d", "x")
                   .Set("b", int64_t{2})  // int -> double coercion
                   .Set("a", int64_t{1})
                   .Set("c", true)
                   .Bind(schema);
  ASSERT_TRUE(event.ok()) << event.status().ToString();
  EXPECT_EQ(event->values[0].as_int(), 1);
  EXPECT_DOUBLE_EQ(event->values[1].as_double(), 2.0);
  EXPECT_TRUE(event->values[2].as_bool());
  EXPECT_EQ(event->values[3].as_string(), "x");

  // Double does not silently narrow to int.
  EXPECT_FALSE(Row()
                   .Set("a", 1.5)
                   .Set("b", 1.0)
                   .Set("c", true)
                   .Set("d", "x")
                   .Bind(schema)
                   .ok());
}

}  // namespace
}  // namespace railgun::api
