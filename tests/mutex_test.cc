// Tests for the annotated mutex wrappers and the debug lock-rank
// checker: ordered acquisition passes, a deliberate rank inversion
// aborts with both stacks (death test), condition-variable waits keep
// the held-lock bookkeeping straight, and the checker compiles out
// when RAILGUN_LOCK_RANK_CHECKS is off.
#include "common/mutex.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace railgun {
namespace {

TEST(MutexTest, OrderedAcquisitionPasses) {
  Mutex outer(kRankTestOuter);
  Mutex inner(kRankTestInner);
  MutexLock outer_lock(&outer);
  MutexLock inner_lock(&inner);
  outer.AssertHeld();
  inner.AssertHeld();
}

TEST(MutexTest, ReleaseAllowsReacquireAtHigherRank) {
  Mutex outer(kRankTestOuter);
  Mutex inner(kRankTestInner);
  {
    MutexLock lock(&inner);
  }
  // inner is no longer held, so taking outer afterwards is fine.
  MutexLock lock(&outer);
}

TEST(MutexTest, TryLockReflectsContention) {
  Mutex mu(kRankTestOuter);
  ASSERT_TRUE(mu.TryLock());
  std::thread other([&mu] { EXPECT_FALSE(mu.TryLock()); });
  other.join();
  mu.Unlock();
}

TEST(MutexTest, CondVarWakesPredicateWaiter) {
  Mutex mu(kRankTestOuter);
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&mu);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&mu);
    cv.Wait(&mu, [&] { return ready; });
    EXPECT_TRUE(ready);
  }
  producer.join();
}

TEST(MutexTest, CondVarWaitForTimesOut) {
  Mutex mu(kRankTestOuter);
  CondVar cv;
  MutexLock lock(&mu);
  EXPECT_FALSE(cv.WaitFor(&mu, 2 * kMicrosPerMilli, [] { return false; }));
}

TEST(MutexTest, CondVarWaitForTimeoutBoundsTotalWait) {
  // Notifies that leave the predicate false must consume the timeout
  // budget, not restart it: with a notifier firing every few millis,
  // a 50ms predicated wait has to return well before the notifier
  // stops (a per-wakeup restart would pin the waiter for the full
  // notifier lifetime).
  Mutex mu(kRankTestOuter);
  CondVar cv;
  std::atomic<bool> stop{false};
  std::thread notifier([&] {
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::seconds(2);
    while (!stop && std::chrono::steady_clock::now() < until) {
      cv.NotifyAll();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  const auto start = std::chrono::steady_clock::now();
  bool result;
  {
    MutexLock lock(&mu);
    result = cv.WaitFor(&mu, 50 * kMicrosPerMilli, [] { return false; });
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  stop = true;
  notifier.join();
  EXPECT_FALSE(result);
  // Generous bound for noisy CI runners; still far below the 2s the
  // restart bug would take.
  EXPECT_LT(elapsed, std::chrono::seconds(1));
}

TEST(MutexTest, CondVarWaitRestoresHeldRecord) {
  // After a wait returns, the mutex must count as held again: a
  // lower-rank acquisition under it has to pass the checker.
  Mutex outer(kRankTestOuter);
  Mutex inner(kRankTestInner);
  CondVar cv;
  bool ready = false;
  std::thread producer([&] {
    MutexLock lock(&outer);
    ready = true;
    cv.NotifyOne();
  });
  {
    MutexLock lock(&outer);
    cv.Wait(&outer, [&] { return ready; });
    MutexLock nested(&inner);
    outer.AssertHeld();
    inner.AssertHeld();
  }
  producer.join();
}

TEST(MutexTest, ManualUnlockRelockOnScopedLock) {
  Mutex mu(kRankTestOuter);
  MutexLock lock(&mu);
  lock.Unlock();
  lock.Lock();
  mu.AssertHeld();
}

#ifdef RAILGUN_LOCK_RANK_CHECKS

TEST(MutexDeathTest, RankInversionAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex outer(kRankTestOuter);
  Mutex inner(kRankTestInner);
  EXPECT_DEATH(
      {
        MutexLock inner_lock(&inner);
        MutexLock outer_lock(&outer);  // 900 under 890: inversion.
      },
      "lock-rank inversion");
}

TEST(MutexDeathTest, EqualRankAborts) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex a(kRankTestOuter);
  Mutex b(kRankTestOuter);
  EXPECT_DEATH(
      {
        MutexLock lock_a(&a);
        MutexLock lock_b(&b);  // Same rank: still an inversion.
      },
      "lock-rank inversion");
}

TEST(MutexDeathTest, AssertHeldAbortsWhenNotHeld) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex mu(kRankTestOuter);
  EXPECT_DEATH(mu.AssertHeld(), "AssertHeld");
}

TEST(MutexDeathTest, InversionReportShowsBothStacks) {
  ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
  Mutex outer(kRankTestOuter);
  Mutex inner(kRankTestInner);
  EXPECT_DEATH(
      {
        MutexLock inner_lock(&inner);
        MutexLock outer_lock(&outer);
      },
      "acquisition attempted at(.|\n)*conflicting lock");
}

#else  // !RAILGUN_LOCK_RANK_CHECKS

TEST(MutexTest, RankCheckingCompiledOut) {
  // Release builds drop the checker entirely: an inversion (which
  // cannot deadlock here — single thread, distinct mutexes) is not
  // diagnosed, and AssertHeld is a no-op.
  Mutex outer(kRankTestOuter);
  Mutex inner(kRankTestInner);
  MutexLock inner_lock(&inner);
  MutexLock outer_lock(&outer);
  outer.AssertHeld();
  inner.AssertHeld();
}

#endif  // RAILGUN_LOCK_RANK_CHECKS

// The checker state is per-thread: two threads may hold unrelated
// locks in any global interleaving without tripping the rank rule.
TEST(MutexTest, PerThreadRankIndependence) {
  Mutex outer(kRankTestOuter);
  Mutex inner(kRankTestInner);
  std::atomic<bool> inner_held{false};
  std::atomic<bool> outer_done{false};
  std::thread low([&] {
    MutexLock lock(&inner);
    inner_held = true;
    while (!outer_done) std::this_thread::yield();
  });
  while (!inner_held) std::this_thread::yield();
  {
    // This thread holds nothing: taking the high rank is legal even
    // though another thread currently holds the low rank.
    MutexLock lock(&outer);
  }
  outer_done = true;
  low.join();
}

}  // namespace
}  // namespace railgun
