// Failure-injection tests: torn and corrupted files, crash points
// between the checkpoint protocol's steps, and replica bootstrap from
// partially-written donors. These validate the recovery story of paper
// §4.1.1 ("only the most recent events can be lost, and quickly
// recovered from Kafka") and §4.2.
#include <gtest/gtest.h>

#include "common/coding.h"
#include "common/env.h"
#include "engine/task_processor.h"
#include "reservoir/reservoir.h"

namespace railgun {
namespace {

using engine::EventEnvelope;
using engine::ReplyEnvelope;
using engine::StreamDef;
using engine::TaskProcessor;
using engine::TaskProcessorOptions;
using reservoir::Event;
using reservoir::FieldType;
using reservoir::FieldValue;
using reservoir::Reservoir;
using reservoir::ReservoirOptions;

ReservoirOptions SmallReservoirOptions() {
  ReservoirOptions options;
  options.chunk_target_bytes = 1024;
  options.segment_max_bytes = 8 * 1024;
  options.async_io = false;
  options.schema_fields = {{"card", FieldType::kString},
                           {"amount", FieldType::kDouble}};
  return options;
}

Event SimpleEvent(Micros ts, uint64_t id) {
  Event e;
  e.timestamp = ts;
  e.id = id;
  e.offset = id;
  e.values = {FieldValue("card1"), FieldValue(1.0)};
  return e;
}

// Appends a torn (half-written) chunk record to the newest segment,
// simulating a crash mid-append.
void TearNewestSegment(const std::string& dir) {
  Env* env = Env::Default();
  std::vector<std::string> children;
  ASSERT_TRUE(env->ListDir(dir, &children).ok());
  std::string newest;
  for (const auto& child : children) {
    if (child.rfind("segment-", 0) == 0 && child > newest) newest = child;
  }
  ASSERT_FALSE(newest.empty());
  std::unique_ptr<WritableFile> file;
  ASSERT_TRUE(env->NewAppendableFile(dir + "/" + newest, &file).ok());
  // A record header promising 4096 payload bytes, then only 10 bytes.
  std::string torn;
  PutFixed32(&torn, 4096);
  PutFixed32(&torn, 0xdeadbeef);
  PutFixed64(&torn, 999999);
  torn += "shortdata!";
  ASSERT_TRUE(file->Append(torn).ok());
  ASSERT_TRUE(file->Close().ok());
}

TEST(ReservoirRecoveryTest, TornSegmentTailIsIgnoredOnOpen) {
  const std::string dir = "/tmp/railgun_recovery_torn";
  ASSERT_TRUE(Env::Default()->RemoveDirRecursive(dir).ok());
  uint64_t persisted;
  {
    Reservoir res(SmallReservoirOptions(), dir);
    ASSERT_TRUE(res.Open().ok());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(res.Append(SimpleEvent(i * 1000, i + 1)).ok());
    }
    persisted = res.LastPersistedOffset();
    ASSERT_GT(persisted, 0u);
  }
  TearNewestSegment(dir);

  Reservoir res(SmallReservoirOptions(), dir);
  ASSERT_TRUE(res.Open().ok());
  EXPECT_EQ(res.LastPersistedOffset(), persisted);
  auto iter = res.NewIterator();
  uint64_t count = 0;
  while (!iter->AtEnd()) {
    ++count;
    iter->Advance();
  }
  EXPECT_EQ(count, persisted);
}

TEST(ReservoirRecoveryTest, CorruptedChunkPayloadDetectedByCrc) {
  const std::string dir = "/tmp/railgun_recovery_crc";
  ASSERT_TRUE(Env::Default()->RemoveDirRecursive(dir).ok());
  {
    Reservoir res(SmallReservoirOptions(), dir);
    ASSERT_TRUE(res.Open().ok());
    for (int i = 0; i < 500; ++i) {
      ASSERT_TRUE(res.Append(SimpleEvent(i * 1000, i + 1)).ok());
    }
  }
  // Flip a byte in the middle of the first segment's data.
  Env* env = Env::Default();
  const std::string segment = dir + "/segment-000001.seg";
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env, segment, &contents).ok());
  contents[contents.size() / 2] ^= 0x5a;
  ASSERT_TRUE(WriteStringToFile(env, contents, segment).ok());

  Reservoir res(SmallReservoirOptions(), dir);
  ASSERT_TRUE(res.Open().ok());
  // Iterating eventually hits the corrupted chunk: the iterator must
  // stop (or skip past it via later chunks) rather than return garbage;
  // the chunk read path reports checksum mismatch.
  auto iter = res.NewIterator();
  uint64_t clean = 0;
  while (!iter->AtEnd() && clean < 1000) {
    EXPECT_EQ(iter->event().values.size(), 2u);  // Decoded sanely.
    ++clean;
    iter->Advance();
  }
  // Some prefix (possibly zero) of events is readable; no crash, no
  // corruption passed through.
  SUCCEED();
}

class TaskProcessorRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/railgun_recovery_taskproc";
    ASSERT_TRUE(Env::Default()->RemoveDirRecursive(dir_).ok());
    stream_.name = "payments";
    stream_.fields = {{"cardId", FieldType::kString},
                      {"amount", FieldType::kDouble}};
    stream_.partitioners = {"cardId"};
    stream_.queries = {
        query::ParseQuery("SELECT count(*), sum(amount) FROM payments "
                          "GROUP BY cardId OVER sliding 1 hour")
            .value()};
    options_.reservoir.chunk_target_bytes = 1024;
    options_.checkpoint_interval_events = 1000000;
  }

  msg::Message MakeMessage(uint64_t offset) {
    const reservoir::Schema schema(0, stream_.fields);
    EventEnvelope env;
    env.request_id = offset + 1;
    env.reply_topic = "replies.r";
    env.event = SimpleEvent(static_cast<Micros>(offset) * 1000, offset + 1);
    env.event.values = {FieldValue("cardZ"), FieldValue(2.0)};
    msg::Message m;
    m.topic = "payments.cardId";
    m.partition = 0;
    m.offset = offset;
    EncodeEventEnvelope(env, schema, &m.payload);
    return m;
  }

  // Runs a processor over offsets [from, to), checkpointing at
  // `checkpoint_at` (if within range). Returns the final count.
  double RunRange(uint64_t from, uint64_t to, int64_t checkpoint_at) {
    TaskProcessor proc(options_, dir_, stream_, "payments.cardId");
    EXPECT_TRUE(proc.Open().ok());
    EXPECT_LE(proc.replay_offset(), from);
    ReplyEnvelope reply;
    for (uint64_t i = proc.replay_offset(); i < to; ++i) {
      EXPECT_TRUE(proc.ProcessMessage(MakeMessage(i), &reply).ok());
      if (static_cast<int64_t>(i) == checkpoint_at) {
        EXPECT_TRUE(proc.Checkpoint().ok());
      }
    }
    double count = -1;
    for (const auto& r : reply.results) {
      if (r.metric_name.rfind("count", 0) == 0) count = r.value.ToNumber();
    }
    return count;
  }

  std::string dir_;
  StreamDef stream_;
  TaskProcessorOptions options_;
};

TEST_F(TaskProcessorRecoveryTest, RepeatedCrashReplayConverges) {
  // Process 0..300 with a checkpoint at 150; "crash"; recover and
  // process to 400; "crash" again without a new checkpoint; recover and
  // process to 500. Counts must stay exact throughout.
  EXPECT_EQ(RunRange(0, 300, 150), 300);
  EXPECT_EQ(RunRange(300, 400, -1), 400);
  EXPECT_EQ(RunRange(400, 500, -1), 500);
}

TEST_F(TaskProcessorRecoveryTest, CrashBeforeFirstCheckpointRebuildsAll) {
  EXPECT_EQ(RunRange(0, 200, -1), 200);
  // No checkpoint taken: recovery replays everything from offset 0.
  TaskProcessor proc(options_, dir_, stream_, "payments.cardId");
  ASSERT_TRUE(proc.Open().ok());
  EXPECT_EQ(proc.replay_offset(), 0u);
  ReplyEnvelope reply;
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(proc.ProcessMessage(MakeMessage(i), &reply).ok());
  }
  double count = -1;
  for (const auto& r : reply.results) {
    if (r.metric_name.rfind("count", 0) == 0) count = r.value.ToNumber();
  }
  EXPECT_EQ(count, 200);
}

TEST_F(TaskProcessorRecoveryTest, StaleCheckpointDirIsAtomic) {
  // A crash mid-checkpoint leaves ckpt.tmp; recovery must use the last
  // complete checkpoint (or none), never the torn one.
  EXPECT_EQ(RunRange(0, 100, 50), 100);
  Env* env = Env::Default();
  ASSERT_TRUE(env->CreateDir(dir_ + "/ckpt.tmp").ok());
  ASSERT_TRUE(
      WriteStringToFile(env, "garbage", dir_ + "/ckpt.tmp/CURRENT").ok());
  EXPECT_EQ(RunRange(100, 150, -1), 150);
}

TEST_F(TaskProcessorRecoveryTest, DonorCloneOfRunningStateIsUsable) {
  // Clone from a donor directory that has a checkpoint plus newer,
  // unsynced writes — the clone must land on the checkpoint boundary
  // and replay forward cleanly.
  EXPECT_EQ(RunRange(0, 250, 120), 250);

  const std::string clone_dir = dir_ + "_clone";
  ASSERT_TRUE(Env::Default()->RemoveDirRecursive(clone_dir).ok());
  ASSERT_TRUE(
      TaskProcessor::CloneData(Env::Default(), dir_, clone_dir).ok());

  TaskProcessor proc(options_, clone_dir, stream_, "payments.cardId");
  ASSERT_TRUE(proc.Open().ok());
  ReplyEnvelope reply;
  for (uint64_t i = proc.replay_offset(); i < 250; ++i) {
    ASSERT_TRUE(proc.ProcessMessage(MakeMessage(i), &reply).ok());
  }
  double count = -1;
  for (const auto& r : reply.results) {
    if (r.metric_name.rfind("count", 0) == 0) count = r.value.ToNumber();
  }
  EXPECT_EQ(count, 250);
}

}  // namespace
}  // namespace railgun
