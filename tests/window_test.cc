// Tests for window specs and the window operator / manager, including
// iterator sharing across aligned windows (paper §4.1.1).
#include <gtest/gtest.h>

#include "common/env.h"
#include "reservoir/reservoir.h"
#include "window/window_operator.h"

namespace railgun::window {
namespace {

using reservoir::Event;
using reservoir::FieldType;
using reservoir::FieldValue;

TEST(WindowSpecTest, FactoriesAndEquality) {
  const WindowSpec a = WindowSpec::Sliding(5 * kMicrosPerMinute);
  const WindowSpec b = WindowSpec::Sliding(5 * kMicrosPerMinute);
  const WindowSpec c = WindowSpec::Sliding(5 * kMicrosPerMinute,
                                           kMicrosPerMinute);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  EXPECT_NE(a.Key(), c.Key());
  EXPECT_EQ(a.Key(), b.Key());
}

TEST(WindowSpecTest, ToStringHumanReadable) {
  EXPECT_EQ(WindowSpec::Sliding(5 * kMicrosPerMinute).ToString(),
            "sliding 5m");
  EXPECT_EQ(WindowSpec::Tumbling(kMicrosPerHour).ToString(), "tumbling 1h");
  EXPECT_EQ(WindowSpec::Infinite().ToString(), "infinite");
  EXPECT_EQ(WindowSpec::Sliding(7 * kMicrosPerDay).ToString(), "sliding 7d");
  EXPECT_EQ(
      WindowSpec::Sliding(kMicrosPerMinute, 30 * kMicrosPerSecond).ToString(),
      "sliding 1m delayed by 30s");
}

TEST(WindowSpecTest, EdgeOffsets) {
  const WindowSpec w = WindowSpec::Sliding(10 * kMicrosPerMinute,
                                           2 * kMicrosPerMinute);
  EXPECT_EQ(w.HeadOffset(), 2 * kMicrosPerMinute);
  EXPECT_EQ(w.TailOffset(), 12 * kMicrosPerMinute);
}

class WindowOperatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/railgun_window_test";
    ASSERT_TRUE(Env::Default()->RemoveDirRecursive(dir_).ok());
    reservoir::ReservoirOptions options;
    options.chunk_target_bytes = 2048;
    options.async_io = false;
    options.schema_fields = {{"v", FieldType::kDouble}};
    reservoir_ = std::make_unique<reservoir::Reservoir>(options, dir_);
    ASSERT_TRUE(reservoir_->Open().ok());
    manager_ = std::make_unique<WindowManager>(reservoir_.get());
  }

  // Appends an event and advances all windows; returns the delta for
  // op. The delta's pointers reference edges_, which lives until the
  // next Step (mirroring the plan executor's usage contract).
  WindowDelta Step(WindowOperator* op, Micros ts, uint64_t id) {
    Event e;
    e.timestamp = ts;
    e.id = id;
    e.offset = id;
    e.values = {FieldValue(static_cast<double>(id))};
    bool accepted;
    EXPECT_TRUE(reservoir_->Append(e, &accepted).ok());
    manager_->Advance(ts, &edges_);
    WindowDelta delta;
    op->Collect(ts, edges_, &delta);
    return delta;
  }

  std::string dir_;
  std::unique_ptr<reservoir::Reservoir> reservoir_;
  std::unique_ptr<WindowManager> manager_;
  EdgeDeltas edges_;
};

TEST_F(WindowOperatorTest, SlidingWindowEnterAndExpire) {
  WindowOperator* op =
      manager_->GetOrCreate(WindowSpec::Sliding(10 * kMicrosPerSecond));

  // Events at t=0s,1s,...: nothing expires until t > 10s.
  for (int i = 0; i <= 10; ++i) {
    const WindowDelta delta =
        Step(op, i * kMicrosPerSecond, static_cast<uint64_t>(i + 1));
    EXPECT_EQ(delta.entered.size(), 1u) << i;
    EXPECT_TRUE(delta.expired.empty()) << i;
  }
  // t=11s: the t=0 event is now strictly older than T_eval - ws.
  const WindowDelta delta = Step(op, 11 * kMicrosPerSecond, 12);
  ASSERT_EQ(delta.expired.size(), 1u);
  EXPECT_EQ(delta.expired[0]->timestamp, 0);
  // Boundary event (t=1s at T_eval=11s) stays: T_eval - ws <= t_i.
}

TEST_F(WindowOperatorTest, Figure1BurstAllFiveEventsInWindow) {
  // The paper's Figure 1: events at minutes 1,2,3,4 and 5.5; a true
  // 5-minute sliding window contains all five at the fifth arrival.
  WindowOperator* op =
      manager_->GetOrCreate(WindowSpec::Sliding(5 * kMicrosPerMinute));
  int in_window = 0;
  const double minutes[] = {1, 2, 3, 4, 5.5};
  WindowDelta delta;
  for (int i = 0; i < 5; ++i) {
    delta = Step(op, static_cast<Micros>(minutes[i] * kMicrosPerMinute),
                 static_cast<uint64_t>(i + 1));
    in_window +=
        static_cast<int>(delta.entered.size() - delta.expired.size());
  }
  EXPECT_EQ(in_window, 5);
}

TEST_F(WindowOperatorTest, TumblingWindowResetsOnBoundary) {
  WindowOperator* op =
      manager_->GetOrCreate(WindowSpec::Tumbling(kMicrosPerMinute));

  WindowDelta d1 = Step(op, 10 * kMicrosPerSecond, 1);
  EXPECT_TRUE(d1.reset);  // First window instance.
  EXPECT_EQ(d1.epoch, 0);
  WindowDelta d2 = Step(op, 50 * kMicrosPerSecond, 2);
  EXPECT_FALSE(d2.reset);
  WindowDelta d3 = Step(op, 70 * kMicrosPerSecond, 3);
  EXPECT_TRUE(d3.reset);  // Crossed the 60 s boundary.
  EXPECT_EQ(d3.epoch, kMicrosPerMinute);
  EXPECT_TRUE(d3.expired.empty());  // Tumbling never expires; it resets.
}

TEST_F(WindowOperatorTest, InfiniteWindowNeverExpires) {
  WindowOperator* op = manager_->GetOrCreate(WindowSpec::Infinite());
  for (int i = 0; i < 500; ++i) {
    const WindowDelta delta =
        Step(op, i * kMicrosPerHour, static_cast<uint64_t>(i + 1));
    EXPECT_TRUE(delta.expired.empty());
    EXPECT_EQ(delta.entered.size(), 1u);
  }
}

TEST_F(WindowOperatorTest, DelayedWindowLagsArrivals) {
  // 10 s window delayed by 5 s: an event enters the window only once a
  // newer event pushes T_eval past its timestamp + 5 s.
  WindowOperator* op = manager_->GetOrCreate(
      WindowSpec::Sliding(10 * kMicrosPerSecond, 5 * kMicrosPerSecond));

  WindowDelta d1 = Step(op, 0, 1);
  EXPECT_TRUE(d1.entered.empty());  // Its own delay excludes it.
  WindowDelta d2 = Step(op, 4 * kMicrosPerSecond, 2);
  EXPECT_TRUE(d2.entered.empty());
  WindowDelta d3 = Step(op, 6 * kMicrosPerSecond, 3);
  ASSERT_EQ(d3.entered.size(), 1u);  // The t=0 event (6-5 >= 0).
  EXPECT_EQ(d3.entered[0]->timestamp, 0);
}

TEST_F(WindowOperatorTest, CountSlidingWindowKeepsExactlyN) {
  WindowOperator* op = manager_->GetOrCreate(WindowSpec::CountSliding(3));
  int64_t in_window = 0;
  for (int i = 0; i < 10; ++i) {
    const WindowDelta delta =
        Step(op, i * kMicrosPerSecond, static_cast<uint64_t>(i + 1));
    in_window +=
        static_cast<int64_t>(delta.entered.size()) -
        static_cast<int64_t>(delta.expired.size());
    if (i >= 2) {
      EXPECT_EQ(in_window, 3);
    }
  }
}

TEST_F(WindowOperatorTest, AlignedWindowsShareIterators) {
  // Same head (delay 0); 1-min and 5-min tails differ => 1 head + 2
  // tails = 3 iterators for two windows (paper: shared head).
  manager_->GetOrCreate(WindowSpec::Sliding(kMicrosPerMinute));
  manager_->GetOrCreate(WindowSpec::Sliding(5 * kMicrosPerMinute));
  EXPECT_EQ(manager_->num_edge_iterators(), 3u);

  // A third window aligned end-to-end with the first
  // (delay 4 min + size 1 min => tail offset 5 min) reuses that tail and
  // adds one head.
  manager_->GetOrCreate(
      WindowSpec::Sliding(kMicrosPerMinute, 4 * kMicrosPerMinute));
  EXPECT_EQ(manager_->num_edge_iterators(), 4u);

  // Duplicate spec adds nothing.
  manager_->GetOrCreate(WindowSpec::Sliding(kMicrosPerMinute));
  EXPECT_EQ(manager_->num_edge_iterators(), 4u);
  EXPECT_EQ(manager_->num_operators(), 3u);
}

TEST_F(WindowOperatorTest, SharedTailBroadcastsToBothWindows) {
  WindowOperator* w1 =
      manager_->GetOrCreate(WindowSpec::Sliding(10 * kMicrosPerSecond));
  WindowOperator* w2 = manager_->GetOrCreate(
      WindowSpec::Sliding(5 * kMicrosPerSecond, 5 * kMicrosPerSecond));
  ASSERT_EQ(w1->spec().TailOffset(), w2->spec().TailOffset());

  // Drive far enough that expirations occur, collecting for both.
  int w1_expired = 0, w2_expired = 0;
  for (int i = 0; i < 30; ++i) {
    Event e;
    e.timestamp = i * kMicrosPerSecond;
    e.id = static_cast<uint64_t>(i + 1);
    e.offset = e.id;
    e.values = {FieldValue(1.0)};
    bool accepted;
    ASSERT_TRUE(reservoir_->Append(e, &accepted).ok());
    EdgeDeltas edges;
    manager_->Advance(e.timestamp, &edges);
    WindowDelta d1, d2;
    w1->Collect(e.timestamp, edges, &d1);
    w2->Collect(e.timestamp, edges, &d2);
    w1_expired += static_cast<int>(d1.expired.size());
    w2_expired += static_cast<int>(d2.expired.size());
  }
  EXPECT_GT(w1_expired, 0);
  EXPECT_EQ(w1_expired, w2_expired);  // Broadcast, not consumed-once.
}

TEST_F(WindowOperatorTest, SaveRestorePositionsResumeExactly) {
  WindowOperator* op =
      manager_->GetOrCreate(WindowSpec::Sliding(10 * kMicrosPerSecond));
  for (int i = 0; i < 50; ++i) {
    Step(op, i * kMicrosPerSecond, static_cast<uint64_t>(i + 1));
  }
  std::string blob;
  manager_->SavePositions(&blob);

  // A fresh manager restored from the blob expires exactly the same
  // events going forward as the original.
  WindowManager restored_mgr(reservoir_.get());
  WindowOperator* restored_op =
      restored_mgr.GetOrCreate(WindowSpec::Sliding(10 * kMicrosPerSecond));
  ASSERT_TRUE(restored_mgr.RestorePositions(blob).ok());

  for (int i = 50; i < 60; ++i) {
    Event e;
    e.timestamp = i * kMicrosPerSecond;
    e.id = static_cast<uint64_t>(i + 1);
    e.offset = e.id;
    e.values = {FieldValue(1.0)};
    bool accepted;
    ASSERT_TRUE(reservoir_->Append(e, &accepted).ok());

    EdgeDeltas edges1, edges2;
    manager_->Advance(e.timestamp, &edges1);
    restored_mgr.Advance(e.timestamp, &edges2);
    WindowDelta d1, d2;
    op->Collect(e.timestamp, edges1, &d1);
    restored_op->Collect(e.timestamp, edges2, &d2);
    ASSERT_EQ(d1.expired.size(), d2.expired.size());
    for (size_t k = 0; k < d1.expired.size(); ++k) {
      EXPECT_EQ(d1.expired[k]->id, d2.expired[k]->id);
    }
  }
}

TEST_F(WindowOperatorTest, RestoreBeforeOperatorCreationKeepsCountState) {
  // Fill a 3-event count window past capacity so it carries real
  // per-operator state: in_window_ == 3 and an advanced count tail.
  WindowOperator* op = manager_->GetOrCreate(WindowSpec::CountSliding(3));
  for (int i = 0; i < 5; ++i) {
    Step(op, i * kMicrosPerSecond, static_cast<uint64_t>(i + 1));
  }
  std::string blob;
  manager_->SavePositions(&blob);

  // Recovery order A: restore BEFORE the plan re-creates the operator.
  // The stashed state must be applied on creation — a full window
  // expires exactly one event per arrival, as the original does.
  WindowManager restored_first(reservoir_.get());
  ASSERT_TRUE(restored_first.RestorePositions(blob).ok());
  WindowOperator* op_a =
      restored_first.GetOrCreate(WindowSpec::CountSliding(3));

  // Recovery order B (the previously working path): create, then
  // restore.
  WindowManager created_first(reservoir_.get());
  WindowOperator* op_b =
      created_first.GetOrCreate(WindowSpec::CountSliding(3));
  ASSERT_TRUE(created_first.RestorePositions(blob).ok());

  for (int i = 5; i < 8; ++i) {
    Event e;
    e.timestamp = i * kMicrosPerSecond;
    e.id = static_cast<uint64_t>(i + 1);
    e.offset = e.id;
    e.values = {FieldValue(1.0)};
    bool accepted;
    ASSERT_TRUE(reservoir_->Append(e, &accepted).ok());

    EdgeDeltas edges0, edges_a, edges_b;
    manager_->Advance(e.timestamp, &edges0);
    restored_first.Advance(e.timestamp, &edges_a);
    created_first.Advance(e.timestamp, &edges_b);
    WindowDelta d0, da, db;
    op->Collect(e.timestamp, edges0, &d0);
    op_a->Collect(e.timestamp, edges_a, &da);
    op_b->Collect(e.timestamp, edges_b, &db);
    ASSERT_EQ(d0.expired.size(), 1u);
    ASSERT_EQ(da.expired.size(), d0.expired.size())
        << "restore-first lost state";
    ASSERT_EQ(db.expired.size(), d0.expired.size()) << "create-first regressed";
    EXPECT_EQ(da.expired[0]->id, d0.expired[0]->id);
    EXPECT_EQ(db.expired[0]->id, d0.expired[0]->id);
  }
}

TEST_F(WindowOperatorTest, RestoreBeforeCreationKeepsTumblingEpoch) {
  WindowOperator* op =
      manager_->GetOrCreate(WindowSpec::Tumbling(kMicrosPerMinute));
  Step(op, 70 * kMicrosPerSecond, 1);  // Epoch = 60 s.
  std::string blob;
  manager_->SavePositions(&blob);

  WindowManager restored(reservoir_.get());
  ASSERT_TRUE(restored.RestorePositions(blob).ok());
  WindowOperator* restored_op =
      restored.GetOrCreate(WindowSpec::Tumbling(kMicrosPerMinute));

  // Same epoch: a restored operator must NOT reset (a fresh one would).
  Event e;
  e.timestamp = 80 * kMicrosPerSecond;
  e.id = 2;
  e.offset = 2;
  e.values = {FieldValue(1.0)};
  bool accepted;
  ASSERT_TRUE(reservoir_->Append(e, &accepted).ok());
  EdgeDeltas edges;
  restored.Advance(e.timestamp, &edges);
  WindowDelta delta;
  restored_op->Collect(e.timestamp, edges, &delta);
  EXPECT_FALSE(delta.reset) << "restored epoch was dropped";
}

}  // namespace
}  // namespace railgun::window
