// Tests for the task plan DAG: prefix sharing, metric correctness across
// window kinds, filters, multiple group-bys, backfill, and window
// position checkpoint/restore.
#include <gtest/gtest.h>

#include <map>

#include "common/env.h"
#include "plan/task_plan.h"

namespace railgun::plan {
namespace {

using reservoir::Event;
using reservoir::FieldType;
using reservoir::FieldValue;

class TaskPlanTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = "/tmp/railgun_plan_test";
    ASSERT_TRUE(Env::Default()->RemoveDirRecursive(dir_).ok());
    reservoir::ReservoirOptions ropts;
    ropts.chunk_target_bytes = 2048;
    ropts.async_io = false;
    ropts.schema_fields = {{"cardId", FieldType::kString},
                           {"merchantId", FieldType::kString},
                           {"amount", FieldType::kDouble}};
    reservoir_ = std::make_unique<reservoir::Reservoir>(ropts, dir_ + "/res");
    ASSERT_TRUE(reservoir_->Open().ok());
    storage::DBOptions dopts;
    ASSERT_TRUE(storage::DB::Open(dopts, dir_ + "/db", &db_).ok());
    plan_ = std::make_unique<TaskPlan>(reservoir_.get(), db_.get());
    ASSERT_TRUE(plan_->Init().ok());
  }

  void AddQuery(const std::string& sql) {
    auto q = query::ParseQuery(sql);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    ASSERT_TRUE(plan_->AddQuery(q.value()).ok());
  }

  // Appends and processes one event; returns metric_name|group -> value.
  std::map<std::string, double> Step(Micros ts, const std::string& card,
                                     const std::string& merchant,
                                     double amount) {
    Event e;
    e.timestamp = ts;
    e.id = ++next_id_;
    e.offset = next_id_;
    e.values = {FieldValue(card), FieldValue(merchant), FieldValue(amount)};
    bool accepted;
    EXPECT_TRUE(reservoir_->Append(e, &accepted).ok());
    std::vector<MetricResult> results;
    EXPECT_TRUE(plan_->ProcessEvent(e, &results).ok());
    std::map<std::string, double> out;
    for (const auto& r : results) {
      out[r.metric_name + "|" + r.group_key] = r.value.ToNumber();
    }
    return out;
  }

  std::string dir_;
  std::unique_ptr<reservoir::Reservoir> reservoir_;
  std::unique_ptr<storage::DB> db_;
  std::unique_ptr<TaskPlan> plan_;
  uint64_t next_id_ = 0;
};

TEST_F(TaskPlanTest, PrefixSharingBuildsMinimalDag) {
  // Q1 and Q2 of the paper share the window; Q1 groups by card, Q2 by
  // merchant: 1 window node, 1 filter node, 2 group nodes, 3 metrics
  // (paper Fig. 6).
  AddQuery("SELECT sum(amount), count(*) FROM p GROUP BY cardId "
           "OVER sliding 5 minutes");
  AddQuery("SELECT avg(amount) FROM p GROUP BY merchantId "
           "OVER sliding 5 minutes");
  EXPECT_EQ(plan_->num_window_nodes(), 1u);
  EXPECT_EQ(plan_->num_filter_nodes(), 1u);
  EXPECT_EQ(plan_->num_group_nodes(), 2u);
  EXPECT_EQ(plan_->num_metrics(), 3u);
  // Shared window => one head + one tail iterator.
  EXPECT_EQ(plan_->num_edge_iterators(), 2u);
}

TEST_F(TaskPlanTest, DistinctWindowsSplitTheDag) {
  AddQuery("SELECT count(*) FROM p GROUP BY cardId OVER sliding 5 minutes");
  AddQuery("SELECT count(*) FROM p GROUP BY cardId OVER sliding 1 hour");
  EXPECT_EQ(plan_->num_window_nodes(), 2u);
  // Shared head, two tails.
  EXPECT_EQ(plan_->num_edge_iterators(), 3u);
}

TEST_F(TaskPlanTest, SlidingSumAndCountPerCard) {
  AddQuery("SELECT sum(amount), count(*) FROM p GROUP BY cardId "
           "OVER sliding 5 minutes");

  Step(1 * kMicrosPerMinute, "cardA", "m1", 10);
  Step(2 * kMicrosPerMinute, "cardB", "m1", 100);
  auto r = Step(3 * kMicrosPerMinute, "cardA", "m2", 20);
  EXPECT_DOUBLE_EQ(r["sum(amount) over sliding 5m by cardId|cardA"], 30);
  EXPECT_DOUBLE_EQ(r["count(*) over sliding 5m by cardId|cardA"], 2);

  // At minute 7, the minute-1 event has expired for cardA.
  auto r2 = Step(7 * kMicrosPerMinute, "cardA", "m1", 5);
  EXPECT_DOUBLE_EQ(r2["sum(amount) over sliding 5m by cardId|cardA"], 25);
  EXPECT_DOUBLE_EQ(r2["count(*) over sliding 5m by cardId|cardA"], 2);
}

TEST_F(TaskPlanTest, FilterExcludesEventsFromStateAndResults) {
  AddQuery("SELECT count(*) FROM p WHERE amount > 50 GROUP BY cardId "
           "OVER sliding 1 hour");
  auto r1 = Step(1000, "c", "m", 100);
  EXPECT_EQ(r1.size(), 1u);
  auto r2 = Step(2000, "c", "m", 10);  // Filtered out.
  EXPECT_TRUE(r2.empty());
  auto r3 = Step(3000, "c", "m", 60);
  EXPECT_DOUBLE_EQ(
      r3["count(*) over sliding 1h by cardId|c"], 2);  // 100 & 60.
}

TEST_F(TaskPlanTest, TumblingWindowResetsAggregation) {
  AddQuery("SELECT sum(amount) FROM p GROUP BY cardId "
           "OVER tumbling 1 minute");
  auto r1 = Step(10 * kMicrosPerSecond, "c", "m", 5);
  auto r2 = Step(50 * kMicrosPerSecond, "c", "m", 7);
  EXPECT_DOUBLE_EQ(r2["sum(amount) over tumbling 1m by cardId|c"], 12);
  // New tumbling instance after the minute boundary.
  auto r3 = Step(70 * kMicrosPerSecond, "c", "m", 3);
  EXPECT_DOUBLE_EQ(r3["sum(amount) over tumbling 1m by cardId|c"], 3);
}

TEST_F(TaskPlanTest, InfiniteWindowNeverForgets) {
  AddQuery("SELECT countDistinct(merchantId) FROM p GROUP BY cardId "
           "OVER infinite");
  Step(1, "c", "m1", 1);
  Step(2 * kMicrosPerDay, "c", "m2", 1);
  Step(4 * kMicrosPerDay, "c", "m1", 1);
  auto r = Step(30 * kMicrosPerDay, "c", "m3", 1);
  EXPECT_DOUBLE_EQ(
      r["countDistinct(merchantId) over infinite by cardId|c"], 3);
}

TEST_F(TaskPlanTest, CountDistinctExpiresWithWindow) {
  AddQuery("SELECT countDistinct(merchantId) FROM p GROUP BY cardId "
           "OVER sliding 10 minutes");
  Step(1 * kMicrosPerMinute, "c", "mA", 1);
  Step(2 * kMicrosPerMinute, "c", "mB", 1);
  auto r1 = Step(3 * kMicrosPerMinute, "c", "mA", 1);
  EXPECT_DOUBLE_EQ(
      r1["countDistinct(merchantId) over sliding 10m by cardId|c"], 2);
  // At minute 13, the events from minutes 1-2 expired; only the
  // minute-3 mA and this mC remain.
  auto r2 = Step(13 * kMicrosPerMinute, "c", "mC", 1);
  EXPECT_DOUBLE_EQ(
      r2["countDistinct(merchantId) over sliding 10m by cardId|c"], 2);
}

TEST_F(TaskPlanTest, MultiGroupByKeysConcatenate) {
  AddQuery("SELECT count(*) FROM p GROUP BY cardId, merchantId "
           "OVER sliding 1 hour");
  Step(1000, "c1", "m1", 1);
  Step(2000, "c1", "m2", 1);
  auto r = Step(3000, "c1", "m1", 1);
  bool found = false;
  for (const auto& [k, v] : r) {
    if (k.find("c1\x1fm1") != std::string::npos) {
      EXPECT_DOUBLE_EQ(v, 2);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TaskPlanTest, BackfillComputesOverHistoricalEvents) {
  AddQuery("SELECT count(*) FROM p GROUP BY cardId OVER sliding 1 hour");
  for (int i = 0; i < 50; ++i) {
    Step(i * kMicrosPerMinute, "c", "m", 2.0);
  }
  // Add sum(amount) later and backfill it from the reservoir
  // (paper §6 future work: metrics backfill).
  auto q = query::ParseQuery(
      "SELECT sum(amount) FROM p GROUP BY cardId OVER sliding 1 hour");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(plan_->AddQueryBackfilled(q.value()).ok());

  // The next event sees a fully backfilled hour of history: events at
  // minutes 0-49 are all inside [t-60m, t] for t = minute 50.
  auto r = Step(50 * kMicrosPerMinute, "c", "m", 2.0);
  EXPECT_DOUBLE_EQ(r["sum(amount) over sliding 1h by cardId|c"], 102.0);
  EXPECT_DOUBLE_EQ(r["count(*) over sliding 1h by cardId|c"], 51);
}

TEST_F(TaskPlanTest, WindowPositionsSurviveSaveRestore) {
  AddQuery("SELECT sum(amount) FROM p GROUP BY cardId "
           "OVER sliding 5 minutes");
  for (int i = 0; i < 30; ++i) {
    Step(i * kMicrosPerMinute, "c", "m", 1.0);
  }
  std::string blob;
  plan_->SaveWindowPositions(&blob);
  EXPECT_FALSE(blob.empty());

  // A new plan over the same reservoir/db, restored, continues with
  // identical results.
  auto plan2 = std::make_unique<TaskPlan>(reservoir_.get(), db_.get());
  ASSERT_TRUE(plan2->Init().ok());
  auto q = query::ParseQuery(
      "SELECT sum(amount) FROM p GROUP BY cardId OVER sliding 5 minutes");
  ASSERT_TRUE(plan2->AddQuery(q.value()).ok());
  ASSERT_TRUE(plan2->RestoreWindowPositions(blob).ok());

  Event e;
  e.timestamp = 30 * kMicrosPerMinute;
  e.id = 1000;
  e.offset = 1000;
  e.values = {FieldValue("c"), FieldValue("m"), FieldValue(1.0)};
  bool accepted;
  ASSERT_TRUE(reservoir_->Append(e, &accepted).ok());

  std::vector<MetricResult> r1, r2;
  ASSERT_TRUE(plan_->ProcessEvent(e, &r1).ok());
  // plan2's restored iterators sit at exactly the positions plan_ had
  // before this event, so processing it re-applies the *same* delta
  // (same enters, same expires) to the shared state store — the
  // reported value must therefore be identical. A mispositioned restore
  // would double-expire or double-enter and diverge.
  ASSERT_TRUE(plan2->ProcessEvent(e, &r2).ok());
  ASSERT_EQ(r1.size(), 1u);
  ASSERT_EQ(r2.size(), 1u);
  EXPECT_NEAR(r2[0].value.ToNumber(), r1[0].value.ToNumber(), 1e-9);
}

TEST_F(TaskPlanTest, UnknownFieldsRejected) {
  auto q1 = query::ParseQuery(
      "SELECT sum(nope) FROM p GROUP BY cardId OVER infinite");
  ASSERT_TRUE(q1.ok());
  EXPECT_FALSE(plan_->AddQuery(q1.value()).ok());
  auto q2 = query::ParseQuery(
      "SELECT count(*) FROM p GROUP BY nope OVER infinite");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(plan_->AddQuery(q2.value()).ok());
}

}  // namespace
}  // namespace railgun::plan
